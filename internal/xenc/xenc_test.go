package xenc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pathfinder/internal/bat"
)

const tinyDoc = `<site><a x="1" y="2"><b>hello</b><c/></a><a x="1">world</a></site>`

func loadTiny(t *testing.T) (*Store, bat.NodeRef) {
	t.Helper()
	s := NewStore()
	doc, err := s.LoadDocumentString("tiny.xml", tinyDoc)
	if err != nil {
		t.Fatal(err)
	}
	return s, doc
}

func TestShredTinyDocStructure(t *testing.T) {
	s, doc := loadTiny(t)
	f := s.Frag(doc.Frag)
	if err := f.Validate(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// doc, site, a, b, "hello", c, a, "world" = 8 nodes
	if f.NodeCount() != 8 {
		t.Fatalf("node count = %d, want 8", f.NodeCount())
	}
	if f.AttrCount() != 3 {
		t.Fatalf("attr count = %d, want 3", f.AttrCount())
	}
	if f.Kind[0] != KindDoc || f.Size[0] != 7 || f.Level[0] != 0 {
		t.Errorf("doc node: kind=%v size=%d level=%d", f.Kind[0], f.Size[0], f.Level[0])
	}
	if s.TagName(f.Prop[1]) != "site" || f.Level[1] != 1 {
		t.Errorf("root element wrong: %s level %d", s.TagName(f.Prop[1]), f.Level[1])
	}
}

func TestSurrogateSharing(t *testing.T) {
	s, doc := loadTiny(t)
	f := s.Frag(doc.Frag)
	// Two <a> elements share one tag surrogate.
	if s.tags.Len() != 4 { // site, a, b, c
		t.Errorf("tag pool size = %d, want 4", s.tags.Len())
	}
	// x="1" appears twice: one name surrogate, one value surrogate.
	var xNames, oneVals []int32
	for i := range f.AttrName {
		if s.AttrNameOf(f.AttrName[i]) == "x" {
			xNames = append(xNames, f.AttrName[i])
		}
		if s.AttrVal(f.AttrVal[i]) == "1" {
			oneVals = append(oneVals, f.AttrVal[i])
		}
	}
	if len(xNames) != 2 || xNames[0] != xNames[1] {
		t.Errorf("x attr surrogates: %v", xNames)
	}
	if len(oneVals) != 2 || oneVals[0] != oneVals[1] {
		t.Errorf("value '1' surrogates: %v", oneVals)
	}
}

func TestDocRegistry(t *testing.T) {
	s, doc := loadTiny(t)
	got, err := s.Doc("tiny.xml")
	if err != nil || got != doc {
		t.Errorf("Doc lookup: %v, %v", got, err)
	}
	if _, err := s.Doc("missing.xml"); err == nil {
		t.Error("missing doc should error")
	}
	if _, err := s.LoadDocumentString("tiny.xml", "<x/>"); err == nil {
		t.Error("duplicate load should error")
	}
	if uris := s.DocURIs(); len(uris) != 1 || uris[0] != "tiny.xml" {
		t.Errorf("DocURIs = %v", uris)
	}
}

func TestParseErrors(t *testing.T) {
	s := NewStore()
	if _, err := s.LoadDocumentString("bad.xml", "<a><b></a>"); err == nil {
		t.Error("mismatched tags must fail")
	}
}

func TestStringValueAndAtomize(t *testing.T) {
	s, doc := loadTiny(t)
	if got := s.StringValue(doc); got != "helloworld" {
		t.Errorf("doc string value = %q", got)
	}
	f := s.Frag(doc.Frag)
	// find <b>
	for p := int32(0); p < int32(f.NodeCount()); p++ {
		if f.Kind[p] == KindElem && s.TagName(f.Prop[p]) == "b" {
			n := bat.NodeRef{Frag: doc.Frag, Pre: p}
			if s.StringValue(n) != "hello" {
				t.Errorf("b string value = %q", s.StringValue(n))
			}
			it := s.Atomize(n)
			if it.Kind != bat.KUntyped || it.S != "hello" {
				t.Errorf("atomize = %v", it)
			}
		}
	}
}

func TestAttrAccess(t *testing.T) {
	s, doc := loadTiny(t)
	f := s.Frag(doc.Frag)
	var aPre int32 = -1
	for p := int32(0); p < int32(f.NodeCount()); p++ {
		if f.Kind[p] == KindElem && s.TagName(f.Prop[p]) == "a" {
			aPre = p
			break
		}
	}
	n := bat.NodeRef{Frag: doc.Frag, Pre: aPre}
	if v, ok := s.AttrValueOf(n, "y"); !ok || v != "2" {
		t.Errorf("a/@y = %q, %v", v, ok)
	}
	if _, ok := s.AttrValueOf(n, "z"); ok {
		t.Error("missing attribute reported present")
	}
	lo, hi := f.Attrs(aPre)
	if hi-lo != 2 {
		t.Errorf("first <a> has %d attrs, want 2", hi-lo)
	}
	// Attribute node refs.
	ar := bat.NodeRef{Frag: doc.Frag, Pre: AttrBase + lo}
	if s.KindOf(ar) != KindAttr {
		t.Error("attr ref kind")
	}
	if s.NameOf(ar) != "x" {
		t.Errorf("attr name = %q", s.NameOf(ar))
	}
	if s.StringValue(ar) != "1" {
		t.Errorf("attr value = %q", s.StringValue(ar))
	}
	if p, ok := s.Parent(ar); !ok || p.Pre != aPre {
		t.Error("attr parent must be owner element")
	}
}

func TestRootAndParent(t *testing.T) {
	s, doc := loadTiny(t)
	f := s.Frag(doc.Frag)
	for p := int32(1); p < int32(f.NodeCount()); p++ {
		n := bat.NodeRef{Frag: doc.Frag, Pre: p}
		if r := s.Root(n); r.Pre != 0 {
			t.Errorf("root of %d = %d", p, r.Pre)
		}
	}
	if _, ok := s.Parent(doc); ok {
		t.Error("doc node has no parent")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	s, doc := loadTiny(t)
	out := s.Serialize(doc)
	if out != tinyDoc {
		t.Errorf("serialize:\n got %q\nwant %q", out, tinyDoc)
	}
}

func TestSerializeEscaping(t *testing.T) {
	s := NewStore()
	doc, err := s.LoadDocumentString("esc.xml", `<r a="x&amp;&quot;y">a &lt; b &amp; c</r>`)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Serialize(doc)
	want := `<r a="x&amp;&quot;y">a &lt; b &amp; c</r>`
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestSerializeAttrRef(t *testing.T) {
	s, doc := loadTiny(t)
	f := s.Frag(doc.Frag)
	lo, _ := f.Attrs(2) // first <a>
	got := s.Serialize(bat.NodeRef{Frag: doc.Frag, Pre: AttrBase + lo})
	if got != `x="1"` {
		t.Errorf("attr serialization = %q", got)
	}
}

func TestDocOrderWithAttributes(t *testing.T) {
	s, doc := loadTiny(t)
	f := s.Frag(doc.Frag)
	lo, _ := f.Attrs(2)
	attr := AttrBase + lo
	if !f.Before(2, attr) {
		t.Error("element before its attributes")
	}
	if !f.Before(attr, 3) {
		t.Error("attribute before element children")
	}
	if f.Before(attr, attr) {
		t.Error("irreflexive")
	}
	if !s.RefBefore(bat.NodeRef{Frag: 0, Pre: 5}, bat.NodeRef{Frag: 1, Pre: 0}) {
		// Fragment order dominates even if frag 1 does not exist yet; only
		// ids are compared.
		t.Error("fragment order must dominate")
	}
}

func TestFragBuilderConstructAndCopy(t *testing.T) {
	s, doc := loadTiny(t)
	f := s.Frag(doc.Frag)
	// Build <out n="1"><b>hello</b>text</out> copying <b> from the doc.
	var bPre int32 = -1
	for p := int32(0); p < int32(f.NodeCount()); p++ {
		if f.Kind[p] == KindElem && s.TagName(f.Prop[p]) == "b" {
			bPre = p
		}
	}
	fb := NewFragBuilder(s)
	root := fb.StartElem("out")
	if root != 0 {
		t.Errorf("first constructed pre = %d", root)
	}
	if err := fb.AddAttr("n", "1"); err != nil {
		t.Fatal(err)
	}
	if err := fb.CopyNode(bat.NodeRef{Frag: doc.Frag, Pre: bPre}); err != nil {
		t.Fatal(err)
	}
	fb.AddText("text")
	fb.EndElem()
	id, err := fb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	nf := s.Frag(id)
	if err := nf.Validate(); err != nil {
		t.Fatalf("constructed fragment invalid: %v", err)
	}
	got := s.Serialize(bat.NodeRef{Frag: id, Pre: 0})
	want := `<out n="1"><b>hello</b>text</out>`
	if got != want {
		t.Errorf("constructed serialization:\n got %q\nwant %q", got, want)
	}
}

func TestFragBuilderCopyDocCopiesChildren(t *testing.T) {
	s, doc := loadTiny(t)
	fb := NewFragBuilder(s)
	fb.StartElem("wrap")
	if err := fb.CopyNode(doc); err != nil {
		t.Fatal(err)
	}
	fb.EndElem()
	id, err := fb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got := s.Serialize(bat.NodeRef{Frag: id, Pre: 0})
	if got != "<wrap>"+tinyDoc+"</wrap>" {
		t.Errorf("copy doc: %q", got)
	}
	if err := s.Frag(id).Validate(); err != nil {
		t.Error(err)
	}
}

func TestFragBuilderCopyAttributeRef(t *testing.T) {
	s, doc := loadTiny(t)
	f := s.Frag(doc.Frag)
	lo, _ := f.Attrs(2)
	fb := NewFragBuilder(s)
	fb.StartElem("e")
	if err := fb.CopyNode(bat.NodeRef{Frag: doc.Frag, Pre: AttrBase + lo}); err != nil {
		t.Fatal(err)
	}
	fb.EndElem()
	id, err := fb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Serialize(bat.NodeRef{Frag: id, Pre: 0}); got != `<e x="1"/>` {
		t.Errorf("copied attribute: %q", got)
	}
}

func TestFragBuilderErrors(t *testing.T) {
	s := NewStore()
	fb := NewFragBuilder(s)
	if err := fb.AddAttr("a", "1"); err == nil {
		t.Error("attr outside element must fail")
	}
	fb.StartElem("e")
	fb.AddText("content")
	if err := fb.AddAttr("late", "1"); err == nil {
		t.Error("attr after content must fail")
	}
	if _, err := fb.Finish(); err == nil {
		t.Error("finish with open element must fail")
	}
}

func TestFragBuilderMultipleRoots(t *testing.T) {
	s := NewStore()
	fb := NewFragBuilder(s)
	fb.StartElem("r1")
	fb.AddText("one")
	fb.EndElem()
	fb.StartElem("r2")
	fb.EndElem()
	id, err := fb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f := s.Frag(id)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// fn:root of the text node is r1, not r2.
	r := s.Root(bat.NodeRef{Frag: id, Pre: 1})
	if r.Pre != 0 {
		t.Errorf("root of text = %d", r.Pre)
	}
	if s.Serialize(bat.NodeRef{Frag: id, Pre: f.Size[0] + 1}) != "<r2/>" {
		t.Error("second root serialization")
	}
}

func TestStorageReport(t *testing.T) {
	s, _ := loadTiny(t)
	r := s.Report()
	if r.Nodes != 8 || r.Attrs != 3 {
		t.Errorf("report counts: %+v", r)
	}
	if r.StructuralBytes != 8*13+3*12 {
		t.Errorf("structural bytes = %d", r.StructuralBytes)
	}
	if r.Total() <= r.StructuralBytes {
		t.Error("pools must contribute")
	}
}

// randomXML emits a random small document; used for property tests.
func randomXML(r *rand.Rand, depth int) string {
	var sb strings.Builder
	tags := []string{"a", "b", "c", "d"}
	var emit func(d int)
	emit = func(d int) {
		tag := tags[r.Intn(len(tags))]
		sb.WriteString("<" + tag)
		if r.Intn(3) == 0 {
			fmt.Fprintf(&sb, ` k="%d"`, r.Intn(4))
		}
		sb.WriteString(">")
		n := r.Intn(4)
		for i := 0; i < n && d < depth; i++ {
			if r.Intn(2) == 0 {
				fmt.Fprintf(&sb, "t%d", r.Intn(10))
			} else {
				emit(d + 1)
			}
		}
		sb.WriteString("</" + tag + ">")
	}
	emit(0)
	return sb.String()
}

// Property: shredding any random document yields a fragment satisfying the
// pre/size/level invariants, and serialization round-trips through a
// second shred to the identical byte string.
func TestQuickShredInvariantsAndRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomXML(r, 4)
		s := NewStore()
		ref, err := s.LoadDocumentString("q.xml", doc)
		if err != nil {
			t.Logf("parse failed: %v", err)
			return false
		}
		if err := s.Frag(ref.Frag).Validate(); err != nil {
			t.Logf("invariant: %v", err)
			return false
		}
		out := s.Serialize(ref)
		s2 := NewStore()
		ref2, err := s2.LoadDocumentString("q.xml", out)
		if err != nil {
			return false
		}
		return s2.Serialize(ref2) == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the descendant region predicate of the paper —
// pre(v) < pre(v') ∧ pre(v') ≤ pre(v)+size(v) — coincides with parent-chain
// reachability on random documents.
func TestQuickDescendantRegionEqualsParentChain(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewStore()
		ref, err := s.LoadDocumentString("q.xml", randomXML(r, 4))
		if err != nil {
			return false
		}
		fr := s.Frag(ref.Frag)
		n := int32(fr.NodeCount())
		for v := int32(0); v < n; v++ {
			for w := int32(0); w < n; w++ {
				region := v < w && w <= v+fr.Size[v]
				chain := false
				for p := fr.Parent[w]; p >= 0; p = fr.Parent[p] {
					if p == v {
						chain = true
						break
					}
				}
				if region != chain {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: copying a random subtree into a new fragment preserves its
// serialization.
func TestQuickCopyPreservesSerialization(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewStore()
		ref, err := s.LoadDocumentString("q.xml", randomXML(r, 4))
		if err != nil {
			return false
		}
		fr := s.Frag(ref.Frag)
		pick := int32(r.Intn(fr.NodeCount()-1) + 1)
		src := bat.NodeRef{Frag: ref.Frag, Pre: pick}
		fb := NewFragBuilder(s)
		fb.StartElem("w")
		if err := fb.CopyNode(src); err != nil {
			return false
		}
		fb.EndElem()
		id, err := fb.Finish()
		if err != nil {
			return false
		}
		if err := s.Frag(id).Validate(); err != nil {
			t.Logf("copy invariant: %v", err)
			return false
		}
		want := "<w>" + s.Serialize(src) + "</w>"
		return s.Serialize(bat.NodeRef{Frag: id, Pre: 0}) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWhitespaceOnlyTextDropped(t *testing.T) {
	s := NewStore()
	ref, err := s.LoadDocumentString("ws.xml", "<a>\n  <b>x</b>\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	f := s.Frag(ref.Frag)
	// doc, a, b, "x" — the indentation text nodes are stripped.
	if f.NodeCount() != 4 {
		t.Errorf("node count = %d, want 4", f.NodeCount())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s, doc := loadTiny(t)
	// Add a constructed fragment so both kinds persist.
	fb := NewFragBuilder(s)
	fb.StartElem("made")
	fb.AddText("content")
	fb.EndElem()
	frag, err := fb.Finish()
	if err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := restored.ReadSnapshot(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	got, err := restored.Doc("tiny.xml")
	if err != nil || got != doc {
		t.Fatalf("doc registry: %v %v", got, err)
	}
	if restored.Serialize(doc) != tinyDoc {
		t.Errorf("restored serialization = %q", restored.Serialize(doc))
	}
	if restored.Serialize(bat.NodeRef{Frag: frag, Pre: 0}) != "<made>content</made>" {
		t.Error("constructed fragment lost")
	}
	// Surrogates still resolve identically.
	if restored.TagID("site") != s.TagID("site") {
		t.Error("tag surrogates diverged")
	}
	if restored.Report().Total() != s.Report().Total() {
		t.Error("storage accounting diverged")
	}
}

func TestSnapshotIntoNonEmptyStoreFails(t *testing.T) {
	s, _ := loadTiny(t)
	var buf strings.Builder
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadSnapshot(strings.NewReader(buf.String())); err == nil {
		t.Error("reading into a non-empty store must fail")
	}
	fresh := NewStore()
	if err := fresh.ReadSnapshot(strings.NewReader("garbage")); err == nil {
		t.Error("corrupt snapshot must fail")
	}
}

func TestPoolLookupMiss(t *testing.T) {
	s, _ := loadTiny(t)
	if s.TagID("nonexistent") != -1 {
		t.Error("unknown tag must map to -1")
	}
	if s.AttrNameID("nonexistent") != -1 {
		t.Error("unknown attr name must map to -1")
	}
	if s.TagID("site") < 0 {
		t.Error("known tag must resolve")
	}
}

// TestNewStoreFromPartsKeepsSealedFragments: adopting a live store's
// Parts (the clone path behind collection mutation) must not reseal the
// shared fragments — resealing reassigns and refills attrOfs while
// in-flight queries over the base store read it through Attrs. Fresh
// fragments (bare columns from the persistent store) still get sealed.
func TestNewStoreFromPartsKeepsSealedFragments(t *testing.T) {
	base, _ := loadTiny(t)
	parts := base.Parts()
	before := parts.Frags[0].attrOfs
	if before == nil {
		t.Fatal("loaded fragment should already be sealed")
	}

	clone, err := NewStoreFromParts(parts)
	if err != nil {
		t.Fatal(err)
	}
	after := clone.frags[0].attrOfs
	if &after[0] != &before[0] {
		t.Error("adopted fragment was resealed: shared attrOfs slice replaced")
	}

	// A bare fragment — exported columns only, as pfstore.Open hands over —
	// must be sealed on adoption so the attribute axis works.
	src := parts.Frags[0]
	bare := &Fragment{
		Name: src.Name, Size: src.Size, Level: src.Level, Kind: src.Kind,
		Prop: src.Prop, Parent: src.Parent,
		AttrOwner: src.AttrOwner, AttrName: src.AttrName, AttrVal: src.AttrVal,
	}
	fresh, err := NewStoreFromParts(Parts{
		Frags: []*Fragment{bare},
		Docs:  map[string]int32{"tiny.xml": 0},
		Pools: parts.Pools,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.frags[0].attrOfs == nil {
		t.Fatal("bare fragment was not sealed on adoption")
	}
	for p := int32(0); p < int32(src.NodeCount()); p++ {
		glo, ghi := fresh.frags[0].Attrs(p)
		wlo, whi := src.Attrs(p)
		if glo != wlo || ghi != whi {
			t.Fatalf("node %d attr range = [%d,%d), want [%d,%d)", p, glo, ghi, wlo, whi)
		}
	}
}
