package pfstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"pathfinder/internal/xenc"
)

// ErrNotFound reports a named collection absent from the catalog; callers
// match it with errors.Is.
var ErrNotFound = errors.New("collection not found")

// Catalog maps collection names to persistent column stores in one
// directory — `<dir>/<name>.pfc` per collection. Stores open lazily on
// first access and stay cached; Put atomically replaces the file, bumps
// the collection's generation (which prepared-plan caches fold into their
// keys), and swaps the cached store so readers that resolved the old
// generation keep a consistent snapshot while new requests see the new
// one.
//
// All methods are safe for concurrent use.
type Catalog struct {
	dir string

	mu   sync.Mutex
	open map[string]*cacheEntry

	// names hands out one mutex per collection name, serializing the
	// file-level mutations (Put's save, Delete's remove) without holding
	// the global mu — Collection lookups on other (or the same) names stay
	// responsive during a multi-second save.
	names sync.Map // map[string]*sync.Mutex
}

// nameLock returns the per-collection mutation lock for name.
func (c *Catalog) nameLock(name string) *sync.Mutex {
	if m, ok := c.names.Load(name); ok {
		return m.(*sync.Mutex)
	}
	m, _ := c.names.LoadOrStore(name, &sync.Mutex{})
	return m.(*sync.Mutex)
}

type cacheEntry struct {
	once  sync.Once
	store *xenc.Store
	meta  *Meta
	err   error
}

const fileExt = ".pfc"

// OpenCatalog opens (creating if needed) a catalog directory.
func OpenCatalog(dir string) (*Catalog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pfstore: open catalog: %w", err)
	}
	return &Catalog{dir: dir, open: make(map[string]*cacheEntry)}, nil
}

// Dir returns the catalog directory.
func (c *Catalog) Dir() string { return c.dir }

// ValidName reports whether name is usable as a collection name: it must
// map to a single path component with no traversal or hidden-file tricks.
func ValidName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for i := 0; i < len(name); i++ {
		b := name[i]
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9':
		case (b == '.' || b == '_' || b == '-') && i > 0:
		default:
			return false
		}
	}
	return true
}

func (c *Catalog) path(name string) (string, error) {
	if !ValidName(name) {
		return "", fmt.Errorf("pfstore: invalid collection name %q", name)
	}
	return filepath.Join(c.dir, name+fileExt), nil
}

// Collection returns the opened store and current generation of a named
// collection, opening the file on first access. This is the engine's
// catalog hook (it satisfies engine.Catalog).
func (c *Catalog) Collection(name string) (*xenc.Store, uint64, error) {
	path, err := c.path(name)
	if err != nil {
		return nil, 0, err
	}
	c.mu.Lock()
	e := c.open[name]
	if e == nil {
		e = &cacheEntry{}
		c.open[name] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.store, e.meta, e.err = Open(path)
	})
	if e.err != nil {
		// Do not cache failures: a later Put must be visible after
		// not-exist, and transient faults (EACCES, torn read, a damaged
		// file later repaired) deserve a fresh attempt on the next access.
		c.mu.Lock()
		if c.open[name] == e {
			delete(c.open, name)
		}
		c.mu.Unlock()
		if os.IsNotExist(e.err) {
			return nil, 0, fmt.Errorf("pfstore: collection %q: %w", name, ErrNotFound)
		}
		return nil, 0, e.err
	}
	return e.store, e.meta.Generation, nil
}

// Put persists an in-memory store as the named collection, replacing any
// previous version atomically. The new generation is the previous one
// plus one (starting at 1), read from the existing file header when the
// collection is not currently open.
func (c *Catalog) Put(name string, store *xenc.Store) (uint64, error) {
	path, err := c.path(name)
	if err != nil {
		return 0, err
	}
	// Serialize with other mutations of this name only: the disk write can
	// take seconds, and holding the global lock for it would stall every
	// Collection lookup on the query path. The on-disk header is the
	// generation authority — under the per-name lock it reflects the last
	// completed Save, including one published by a prior Put.
	nameMu := c.nameLock(name)
	nameMu.Lock()
	defer nameMu.Unlock()
	gen := uint64(0)
	if m, err := ReadMeta(path); err == nil {
		gen = m.Generation
	}
	gen++
	if err := Save(path, store, name, gen); err != nil {
		return 0, err
	}
	// Swap the cache entry to a pre-resolved one so readers of the new
	// generation never re-read the file.
	e := &cacheEntry{store: store, meta: &Meta{Collection: name, Generation: gen, Docs: store.Parts().Docs}}
	e.once.Do(func() {})
	c.mu.Lock()
	c.open[name] = e
	c.mu.Unlock()
	return gen, nil
}

// Delete removes a collection file and drops any cached store. Deleting
// an absent collection is an error (so HTTP DELETE can 404).
func (c *Catalog) Delete(name string) error {
	path, err := c.path(name)
	if err != nil {
		return err
	}
	nameMu := c.nameLock(name)
	nameMu.Lock()
	defer nameMu.Unlock()
	// Remove the file before dropping the cache entry: in the reverse
	// order a concurrent Collection could re-open and re-cache the file in
	// the window between the two, leaving a cached store for a collection
	// that no longer exists on disk.
	rmErr := os.Remove(path)
	c.mu.Lock()
	delete(c.open, name)
	c.mu.Unlock()
	if rmErr != nil {
		if os.IsNotExist(rmErr) {
			return fmt.Errorf("pfstore: collection %q: %w", name, ErrNotFound)
		}
		return rmErr
	}
	syncDir(c.dir)
	return nil
}

// CollectionInfo is one List entry — the cheap metadata read from the
// file header, without opening the column sections.
type CollectionInfo struct {
	Name       string   `json:"name"`
	Generation uint64   `json:"generation"`
	Documents  []string `json:"documents"`
	Nodes      int64    `json:"nodes"`
	Attrs      int64    `json:"attrs"`
	SizeBytes  int64    `json:"size_bytes"`
}

// List enumerates the catalog's collections in name order. Files that
// fail their header checks are skipped (a partially written temp file
// never matches *.pfc, so these are genuinely damaged files).
func (c *Catalog) List() ([]CollectionInfo, error) {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, err
	}
	var out []CollectionInfo
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), fileExt) {
			continue
		}
		name := strings.TrimSuffix(ent.Name(), fileExt)
		if !ValidName(name) {
			continue
		}
		meta, err := ReadMeta(filepath.Join(c.dir, ent.Name()))
		if err != nil {
			continue
		}
		info := CollectionInfo{
			Name:       name,
			Generation: meta.Generation,
			Documents:  meta.Manifest,
			Nodes:      meta.Nodes,
			Attrs:      meta.Attrs,
		}
		if fi, err := ent.Info(); err == nil {
			info.SizeBytes = fi.Size()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
