package pfstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pathfinder/internal/xenc"
)

const sampleDoc = `<site><people><person id="p0"><name>Ann</name></person>` +
	`<person id="p1"><name>Bob</name></person></people>` +
	`<regions><africa><item id="i0"><quantity>2</quantity></item></africa></regions></site>`

func sampleStore(t *testing.T) *xenc.Store {
	t.Helper()
	s := xenc.NewStore()
	if _, err := s.LoadDocumentString("a.xml", sampleDoc); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadDocumentString("b.xml", `<log><entry ts="1">ok</entry><!--tail--></log>`); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSaveOpenRoundTrip(t *testing.T) {
	src := sampleStore(t)
	path := filepath.Join(t.TempDir(), "c.pfc")
	if err := Save(path, src, "c", 7); err != nil {
		t.Fatal(err)
	}
	got, meta, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation != 7 || meta.Collection != "c" {
		t.Fatalf("meta = %+v", meta)
	}
	if want := []string{"a.xml", "b.xml"}; len(meta.Manifest) != 2 || meta.Manifest[0] != want[0] || meta.Manifest[1] != want[1] {
		t.Fatalf("manifest = %v", meta.Manifest)
	}
	sp, gp := src.Parts(), got.Parts()
	if len(sp.Frags) != len(gp.Frags) {
		t.Fatalf("fragment count %d != %d", len(gp.Frags), len(sp.Frags))
	}
	for i := range sp.Frags {
		a, b := sp.Frags[i], gp.Frags[i]
		if err := b.Validate(); err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		if a.NodeCount() != b.NodeCount() || a.AttrCount() != b.AttrCount() {
			t.Fatalf("fragment %d counts differ", i)
		}
		for p := 0; p < a.NodeCount(); p++ {
			if a.Size[p] != b.Size[p] || a.Level[p] != b.Level[p] || a.Kind[p] != b.Kind[p] ||
				a.Prop[p] != b.Prop[p] || a.Parent[p] != b.Parent[p] {
				t.Fatalf("fragment %d node %d differs", i, p)
			}
		}
	}
	for k := range sp.Pools {
		if len(sp.Pools[k]) != len(gp.Pools[k]) {
			t.Fatalf("pool %d size differs", k)
		}
		for i := range sp.Pools[k] {
			if sp.Pools[k][i] != gp.Pools[k][i] {
				t.Fatalf("pool %d entry %d differs", k, i)
			}
		}
	}
	// Reopened store answers content lookups (lazy pool index path).
	if got.TagID("person") != src.TagID("person") {
		t.Fatal("TagID differs after reopen")
	}
	root, err := got.Doc("a.xml")
	if err != nil {
		t.Fatal(err)
	}
	srcRoot, err := src.Doc("a.xml")
	if err != nil {
		t.Fatal(err)
	}
	if got.StringValue(root) != src.StringValue(srcRoot) {
		t.Fatal("string value differs after reopen")
	}
}

func TestOpenRejectsDamage(t *testing.T) {
	src := sampleStore(t)
	path := filepath.Join(t.TempDir(), "c.pfc")
	if err := Save(path, src, "c", 1); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(b []byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"bad version", func(b []byte) []byte { b[8] = 99; return b }},
		{"header bitflip", func(b []byte) []byte { b[20] ^= 0x01; return b }},
		{"table bitflip", func(b []byte) []byte { b[headerBytes+3] ^= 0x01; return b }},
		{"section bitflip", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"truncated table", func(b []byte) []byte { return b[:headerBytes+5] }},
		{"truncated body", func(b []byte) []byte { return b[:len(b)/2] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), buf...))
			if _, _, err := OpenBytes(b); err == nil {
				t.Fatalf("OpenBytes accepted %s", tc.name)
			}
		})
	}
}

func TestCatalogPutGetDeleteList(t *testing.T) {
	cat, err := OpenCatalog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cat.Collection("missing"); err == nil {
		t.Fatal("expected not-found error")
	}
	src := sampleStore(t)
	gen, err := cat.Put("docs", src)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("first generation = %d", gen)
	}
	st, g, err := cat.Collection("docs")
	if err != nil || g != 1 || st == nil {
		t.Fatalf("Collection: %v g=%d", err, g)
	}
	gen2, err := cat.Put("docs", src)
	if err != nil || gen2 != 2 {
		t.Fatalf("re-Put: %v gen=%d", err, gen2)
	}
	// A fresh catalog over the same dir reads generation from the file.
	cat2, err := OpenCatalog(cat.Dir())
	if err != nil {
		t.Fatal(err)
	}
	gen3, err := cat2.Put("docs", src)
	if err != nil || gen3 != 3 {
		t.Fatalf("cold re-Put: %v gen=%d", err, gen3)
	}
	infos, err := cat2.List()
	if err != nil || len(infos) != 1 {
		t.Fatalf("List: %v %v", err, infos)
	}
	if infos[0].Name != "docs" || infos[0].Generation != 3 || len(infos[0].Documents) != 2 {
		t.Fatalf("List entry = %+v", infos[0])
	}
	if err := cat2.Delete("docs"); err != nil {
		t.Fatal(err)
	}
	if err := cat2.Delete("docs"); err == nil {
		t.Fatal("double delete should fail")
	}
	for _, bad := range []string{"", "..", "a/b", ".hidden", "-dash", "x y"} {
		if ValidName(bad) {
			t.Fatalf("ValidName(%q) = true", bad)
		}
	}
	for _, good := range []string{"a", "auction", "x.y-z_2"} {
		if !ValidName(good) {
			t.Fatalf("ValidName(%q) = false", good)
		}
	}
}

// TestCatalogRetriesAfterOpenError: an open failure (damaged file, torn
// read) must not be pinned in the once-guarded cache entry — after the
// file is repaired on disk, the next Collection access succeeds.
func TestCatalogRetriesAfterOpenError(t *testing.T) {
	dir := t.TempDir()
	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "docs"+fileExt)
	if err := os.WriteFile(path, []byte("this is not a pfc file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cat.Collection("docs"); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("damaged file open = %v, want a non-not-found error", err)
	}
	if err := Save(path, sampleStore(t), "docs", 5); err != nil {
		t.Fatal(err)
	}
	st, gen, err := cat.Collection("docs")
	if err != nil || st == nil || gen != 5 {
		t.Fatalf("after repair: store=%v gen=%d err=%v, want gen 5", st != nil, gen, err)
	}
}
