package pfstore

import (
	"encoding/binary"
	"io"
	"unsafe"

	"pathfinder/internal/xenc"
)

// The column sections are little-endian int32 (or single-byte kind)
// arrays. On a little-endian host the in-memory representation is
// byte-identical to the file representation, so writing a column is one
// Write of the aliased backing array and reading one is a zero-copy
// unsafe.Slice over the file buffer — the property that makes reopen a
// bulk read instead of a decode loop. Big-endian hosts (and misaligned
// buffers, which Open's 8-byte section alignment rules out in practice)
// take the element-wise fallback.

var hostLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// writeInt32s writes v as little-endian int32s.
func writeInt32s(w io.Writer, v []int32) error {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		_, err := w.Write(unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v)))
		return err
	}
	buf := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(x))
	}
	_, err := w.Write(buf)
	return err
}

// int32sFrom views b (length a multiple of 4) as []int32, aliasing the
// buffer when the host representation matches, copying otherwise.
func int32sFrom(b []byte) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// kindBytes views a kind column as raw bytes (NodeKind is one byte, so
// this is representation-exact on every host).
func kindBytes(v []xenc.NodeKind) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v))
}

// kindsFrom views raw bytes as a kind column.
func kindsFrom(b []byte) []xenc.NodeKind {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*xenc.NodeKind)(unsafe.Pointer(&b[0])), len(b))
}
