package pfstore_test

// FuzzOpenStore drives arbitrary bytes through the columnar file reader.
// OpenBytes sits on a trust boundary — catalog files can arrive from
// rsync, scp, or a crashed writer — so it must either reject an input
// with an error or produce a store whose every document serializes
// without panicking. The seeds are real saved files plus systematically
// damaged variants, so the fuzzer starts inside the interesting part of
// the input space (valid header, plausible section table).

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pathfinder/internal/pfstore"
	"pathfinder/internal/xenc"
)

func savedBytes(f *testing.F, docs map[string]string) []byte {
	f.Helper()
	store := xenc.NewStore()
	for uri, doc := range docs {
		if _, err := store.LoadDocumentString(uri, doc); err != nil {
			f.Fatal(err)
		}
	}
	path := filepath.Join(f.TempDir(), "seed.pfc")
	if err := pfstore.Save(path, store, "seed", 1); err != nil {
		f.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return buf
}

func FuzzOpenStore(f *testing.F) {
	small := savedBytes(f, map[string]string{"a.xml": `<a b="c"><d>text</d><!--x--></a>`})
	multi := savedBytes(f, map[string]string{
		"a.xml": `<site><people><person id="p1"><name>A</name></person></people></site>`,
		"b.xml": `<log><entry level="info">ok</entry></log>`,
	})
	f.Add([]byte{})
	f.Add([]byte("PFSTORE1"))
	f.Add(small)
	f.Add(multi)
	f.Add(small[:len(small)/2]) // truncated body
	for _, at := range []int{8, 16, 40, len(small) - 4} {
		dmg := bytes.Clone(small)
		dmg[at] ^= 0x40
		f.Add(dmg)
	}

	f.Fuzz(func(t *testing.T, buf []byte) {
		store, meta, err := pfstore.OpenBytes(buf)
		if err != nil {
			return
		}
		// An accepted file must be fully usable: every manifest document
		// resolves and serializes without faulting, and the storage report
		// walks every column.
		for _, uri := range meta.Manifest {
			ref, err := store.Doc(uri)
			if err != nil {
				t.Fatalf("accepted store: manifest doc %q missing: %v", uri, err)
			}
			_ = store.Serialize(ref)
			_ = store.StringValue(ref)
		}
		_ = store.Report()
	})
}
