// Package pfstore gives the XPath Accelerator encoding a durable,
// columnar on-disk home. A collection file holds exactly what the
// in-memory store holds — the pre|size|level/kind/prop columns of every
// fragment plus the four interned string pools — laid out as fixed-width,
// checksummed sections behind a versioned header, so a saved collection
// reopens with one bulk read and zero per-node parsing: on little-endian
// hosts the column slices alias the file buffer directly (the layout is
// mmap-friendly by construction), and the string pools materialize as
// substrings of a single blob copy.
//
// On top of the file format, Catalog manages a directory of named
// collections — the service's PUT/GET/DELETE /collections API and the
// -store flags of the commands are thin wrappers around it.
//
// File layout (all integers little-endian):
//
//	header   magic "PFSTORE1" | version u32 | flags u32 | generation u64 |
//	         sections u32 | crc32(header[0:28]) u32          (32 bytes)
//	table    sections × {id u32, frag u32, offset u64, length u64,
//	         crc32 u32, pad u32}                             (32 bytes each)
//	tableCRC crc32 of the table bytes u32
//	sections 8-byte-aligned byte ranges, one per table entry
//
// Section ids: one store-wide JSON meta section (document registry, shard
// manifest, fragment names, counts), eight per-fragment column sections,
// and four pool sections ({count u32, offsets (count+1)×u32, blob}).
package pfstore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"pathfinder/internal/xenc"
)

// Format constants. Version bumps when the layout changes incompatibly;
// Open rejects unknown versions rather than guessing.
const (
	magic   = "PFSTORE1"
	version = 1

	headerBytes  = 32
	entryBytes   = 32
	sectionAlign = 8
)

// Section ids.
const (
	secMeta uint32 = iota + 1
	secSize
	secLevel
	secKind
	secProp
	secParent
	secAttrOwner
	secAttrName
	secAttrVal
	secPoolTags
	secPoolAttrNames
	secPoolTexts
	secPoolAttrVals
)

// noFrag marks store-wide sections in the table's frag field.
const noFrag = ^uint32(0)

// Meta is the store-wide JSON section: everything List and the catalog
// need without touching the column sections.
type Meta struct {
	Collection string           `json:"collection,omitempty"`
	Generation uint64           `json:"generation"`
	Docs       map[string]int32 `json:"docs"`     // document URI → fragment id
	Manifest   []string         `json:"manifest"` // shard manifest: doc URIs in load order
	FragNames  []string         `json:"frag_names"`
	Nodes      int64            `json:"nodes"`
	Attrs      int64            `json:"attrs"`
}

type tableEntry struct {
	id     uint32
	frag   uint32
	offset uint64
	length uint64
	crc    uint32
}

// Save writes the store's columnar content to path atomically
// (write-temp-then-rename): a crash mid-save never corrupts a previously
// published file, and readers only ever see complete, checksummed files.
func Save(path string, store *xenc.Store, collection string, generation uint64) (err error) {
	parts := store.Parts()
	meta := Meta{
		Collection: collection,
		Generation: generation,
		Docs:       parts.Docs,
		Manifest:   manifestOf(parts),
	}
	for _, f := range parts.Frags {
		meta.FragNames = append(meta.FragNames, f.Name)
		meta.Nodes += int64(f.NodeCount())
		meta.Attrs += int64(f.AttrCount())
	}
	metaJSON, err := json.Marshal(&meta)
	if err != nil {
		return err
	}

	// Lay out the section table up front: sizes are known, offsets follow.
	var entries []tableEntry
	add := func(id, frag uint32, length int) {
		entries = append(entries, tableEntry{id: id, frag: frag, length: uint64(length)})
	}
	add(secMeta, noFrag, len(metaJSON))
	for i, f := range parts.Frags {
		fi := uint32(i)
		add(secSize, fi, 4*f.NodeCount())
		add(secLevel, fi, 4*f.NodeCount())
		add(secKind, fi, f.NodeCount())
		add(secProp, fi, 4*f.NodeCount())
		add(secParent, fi, 4*f.NodeCount())
		add(secAttrOwner, fi, 4*f.AttrCount())
		add(secAttrName, fi, 4*f.AttrCount())
		add(secAttrVal, fi, 4*f.AttrCount())
	}
	for k, id := range []uint32{secPoolTags, secPoolAttrNames, secPoolTexts, secPoolAttrVals} {
		add(id, noFrag, poolSectionLen(parts.Pools[k]))
	}
	off := uint64(headerBytes + len(entries)*entryBytes + 4)
	for i := range entries {
		off = alignUp(off)
		entries[i].offset = off
		off += entries[i].length
	}

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	w := bufio.NewWriterSize(f, 1<<20)
	// Header + placeholder table; the table is patched in place once the
	// section CRCs are known.
	hdr := make([]byte, headerBytes)
	copy(hdr, magic)
	le := binary.LittleEndian
	le.PutUint32(hdr[8:], version)
	le.PutUint32(hdr[12:], 0) // flags
	le.PutUint64(hdr[16:], generation)
	le.PutUint32(hdr[24:], uint32(len(entries)))
	le.PutUint32(hdr[28:], crc32.ChecksumIEEE(hdr[:28]))
	if _, err = w.Write(hdr); err != nil {
		return err
	}
	if _, err = w.Write(make([]byte, len(entries)*entryBytes+4)); err != nil {
		return err
	}

	// Sections, in table order, tracking the write position for padding.
	pos := uint64(headerBytes + len(entries)*entryBytes + 4)
	var pad [sectionAlign]byte
	writeSection := func(i int, emit func(io.Writer) error) error {
		if aligned := alignUp(pos); aligned > pos {
			if _, err := w.Write(pad[:aligned-pos]); err != nil {
				return err
			}
			pos = aligned
		}
		h := crc32.NewIEEE()
		if err := emit(io.MultiWriter(w, h)); err != nil {
			return err
		}
		entries[i].crc = h.Sum32()
		pos += entries[i].length
		return nil
	}
	ei := 0
	if err = writeSection(ei, func(w io.Writer) error { _, e := w.Write(metaJSON); return e }); err != nil {
		return err
	}
	ei++
	for _, frag := range parts.Frags {
		cols := []func(io.Writer) error{
			int32Emitter(frag.Size), int32Emitter(frag.Level), kindEmitter(frag.Kind),
			int32Emitter(frag.Prop), int32Emitter(frag.Parent),
			int32Emitter(frag.AttrOwner), int32Emitter(frag.AttrName), int32Emitter(frag.AttrVal),
		}
		for _, emit := range cols {
			if err = writeSection(ei, emit); err != nil {
				return err
			}
			ei++
		}
	}
	for k := range parts.Pools {
		pool := parts.Pools[k]
		if err = writeSection(ei, func(w io.Writer) error { return emitPool(w, pool) }); err != nil {
			return err
		}
		ei++
	}
	if err = w.Flush(); err != nil {
		return err
	}

	// Patch the finished table (with CRCs) behind the header.
	table := make([]byte, len(entries)*entryBytes+4)
	for i, e := range entries {
		b := table[i*entryBytes:]
		le.PutUint32(b, e.id)
		le.PutUint32(b[4:], e.frag)
		le.PutUint64(b[8:], e.offset)
		le.PutUint64(b[16:], e.length)
		le.PutUint32(b[24:], e.crc)
	}
	le.PutUint32(table[len(entries)*entryBytes:], crc32.ChecksumIEEE(table[:len(entries)*entryBytes]))
	if _, err = f.WriteAt(table, headerBytes); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// manifestOf orders the document URIs by fragment id — load order, the
// order fn:collection fans a multi-document collection out in.
func manifestOf(p xenc.Parts) []string {
	type ent struct {
		uri string
		id  int32
	}
	ents := make([]ent, 0, len(p.Docs))
	for u, id := range p.Docs {
		ents = append(ents, ent{u, id})
	}
	for i := 1; i < len(ents); i++ { // insertion sort: collections hold few documents
		for j := i; j > 0 && ents[j-1].id > ents[j].id; j-- {
			ents[j-1], ents[j] = ents[j], ents[j-1]
		}
	}
	out := make([]string, len(ents))
	for i, e := range ents {
		out[i] = e.uri
	}
	return out
}

func alignUp(off uint64) uint64 {
	return (off + sectionAlign - 1) &^ uint64(sectionAlign-1)
}

func poolSectionLen(strs []string) int {
	n := 4 + 4*(len(strs)+1)
	for _, s := range strs {
		n += len(s)
	}
	return n
}

func emitPool(w io.Writer, strs []string) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(strs)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	offs := make([]byte, 4*(len(strs)+1))
	off := uint32(0)
	for i, s := range strs {
		binary.LittleEndian.PutUint32(offs[i*4:], off)
		off += uint32(len(s))
	}
	binary.LittleEndian.PutUint32(offs[len(strs)*4:], off)
	if _, err := w.Write(offs); err != nil {
		return err
	}
	for _, s := range strs {
		if _, err := io.WriteString(w, s); err != nil {
			return err
		}
	}
	return nil
}

func int32Emitter(v []int32) func(io.Writer) error {
	return func(w io.Writer) error {
		return writeInt32s(w, v)
	}
}

func kindEmitter(v []xenc.NodeKind) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := w.Write(kindBytes(v))
		return err
	}
}

// syncDir best-effort fsyncs a directory so the rename itself is durable;
// failures are ignored (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck
		d.Close()
	}
}

// Open reads a collection file back into a store: one bulk read, header
// and per-section checksum verification, then column adoption straight
// from the buffer (zero-copy on little-endian hosts) plus a single linear
// bounds pass that makes every accessor memory-safe. No XML is parsed and
// no string is re-interned — the pre|size|level encoding comes back
// exactly as it was saved.
func Open(path string) (*xenc.Store, *Meta, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return OpenBytes(buf)
}

// OpenBytes is Open over an in-memory image (the fuzz target's entry
// point). The returned store aliases buf; callers must not mutate it.
func OpenBytes(buf []byte) (*xenc.Store, *Meta, error) {
	entries, gen, err := parseHeader(buf)
	if err != nil {
		return nil, nil, err
	}
	section := func(i int) ([]byte, error) {
		e := entries[i]
		if e.offset > uint64(len(buf)) || e.length > uint64(len(buf))-e.offset {
			return nil, fmt.Errorf("pfstore: section %d out of bounds (%d+%d > %d)", e.id, e.offset, e.length, len(buf))
		}
		b := buf[e.offset : e.offset+e.length]
		if crc32.ChecksumIEEE(b) != e.crc {
			return nil, fmt.Errorf("pfstore: section %d checksum mismatch", e.id)
		}
		return b, nil
	}

	// Pass 1: index sections and decode the meta + pools.
	var meta Meta
	var pools [4][]string
	fragCols := map[uint32]map[uint32][]byte{} // frag → section id → bytes
	maxFrag := -1
	for i, e := range entries {
		b, err := section(i)
		if err != nil {
			return nil, nil, err
		}
		switch {
		case e.id == secMeta:
			if err := json.Unmarshal(b, &meta); err != nil {
				return nil, nil, fmt.Errorf("pfstore: bad meta section: %w", err)
			}
		case e.id >= secPoolTags && e.id <= secPoolAttrVals:
			p, err := parsePool(b)
			if err != nil {
				return nil, nil, fmt.Errorf("pfstore: pool section %d: %w", e.id, err)
			}
			pools[e.id-secPoolTags] = p
		case e.id >= secSize && e.id <= secAttrVal:
			if e.frag == noFrag {
				return nil, nil, fmt.Errorf("pfstore: column section %d lacks a fragment index", e.id)
			}
			m := fragCols[e.frag]
			if m == nil {
				m = map[uint32][]byte{}
				fragCols[e.frag] = m
			}
			m[e.id] = b
			if int(e.frag) > maxFrag {
				maxFrag = int(e.frag)
			}
		default:
			return nil, nil, fmt.Errorf("pfstore: unknown section id %d", e.id)
		}
	}
	meta.Generation = gen // the header copy is authoritative

	// Pass 2: adopt the columns fragment by fragment.
	if len(meta.FragNames) != maxFrag+1 {
		return nil, nil, fmt.Errorf("pfstore: meta names %d fragments, file has %d", len(meta.FragNames), maxFrag+1)
	}
	parts := xenc.Parts{Docs: meta.Docs, Pools: pools}
	for fi := 0; fi <= maxFrag; fi++ {
		cols := fragCols[uint32(fi)]
		if cols == nil {
			return nil, nil, fmt.Errorf("pfstore: fragment %d has no column sections", fi)
		}
		col := func(id uint32) ([]int32, error) {
			b, ok := cols[id]
			if !ok {
				return nil, fmt.Errorf("pfstore: fragment %d lacks column section %d", fi, id)
			}
			if len(b)%4 != 0 {
				return nil, fmt.Errorf("pfstore: fragment %d column %d not 4-byte sized", fi, id)
			}
			return int32sFrom(b), nil
		}
		f := &xenc.Fragment{Name: meta.FragNames[fi]}
		var errc error
		take := func(dst *[]int32, id uint32) {
			if errc == nil {
				*dst, errc = col(id)
			}
		}
		take(&f.Size, secSize)
		take(&f.Level, secLevel)
		take(&f.Prop, secProp)
		take(&f.Parent, secParent)
		take(&f.AttrOwner, secAttrOwner)
		take(&f.AttrName, secAttrName)
		take(&f.AttrVal, secAttrVal)
		if errc != nil {
			return nil, nil, errc
		}
		kb, ok := cols[secKind]
		if !ok {
			return nil, nil, fmt.Errorf("pfstore: fragment %d lacks the kind column", fi)
		}
		f.Kind = kindsFrom(kb)
		if err := checkFragment(f, pools); err != nil {
			return nil, nil, fmt.Errorf("pfstore: fragment %d (%s): %w", fi, f.Name, err)
		}
		parts.Frags = append(parts.Frags, f)
	}
	store, err := xenc.NewStoreFromParts(parts)
	if err != nil {
		return nil, nil, fmt.Errorf("pfstore: %w", err)
	}
	for uri, id := range meta.Docs {
		f := parts.Frags[id]
		if f.NodeCount() == 0 || f.Kind[0] != xenc.KindDoc {
			return nil, nil, fmt.Errorf("pfstore: document %q: fragment %d has no document root", uri, id)
		}
	}
	return store, &meta, nil
}

// ReadMeta reads only the header and meta section — the catalog's List
// path, which must not pay for the column sections of unopened
// collections.
func ReadMeta(path string) (*Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	head := make([]byte, headerBytes)
	if _, err := io.ReadFull(f, head); err != nil {
		return nil, fmt.Errorf("pfstore: short header: %w", err)
	}
	nSections := int(binary.LittleEndian.Uint32(head[24:]))
	if err := checkFixedHeader(head, nSections); err != nil {
		return nil, err
	}
	table := make([]byte, nSections*entryBytes+4)
	if _, err := io.ReadFull(f, table); err != nil {
		return nil, fmt.Errorf("pfstore: short section table: %w", err)
	}
	entries, err := parseTable(table, nSections)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.id != secMeta {
			continue
		}
		if e.length > 64<<20 {
			return nil, fmt.Errorf("pfstore: meta section implausibly large (%d bytes)", e.length)
		}
		b := make([]byte, e.length)
		if _, err := f.ReadAt(b, int64(e.offset)); err != nil {
			return nil, fmt.Errorf("pfstore: read meta: %w", err)
		}
		if crc32.ChecksumIEEE(b) != e.crc {
			return nil, fmt.Errorf("pfstore: meta section checksum mismatch")
		}
		var meta Meta
		if err := json.Unmarshal(b, &meta); err != nil {
			return nil, fmt.Errorf("pfstore: bad meta section: %w", err)
		}
		return &meta, nil
	}
	return nil, fmt.Errorf("pfstore: file has no meta section")
}

// parseHeader validates the fixed header and section table of an
// in-memory image and returns the table entries and generation.
func parseHeader(buf []byte) ([]tableEntry, uint64, error) {
	if len(buf) < headerBytes+4 {
		return nil, 0, fmt.Errorf("pfstore: file too short (%d bytes)", len(buf))
	}
	le := binary.LittleEndian
	nSections := int(le.Uint32(buf[24:]))
	if err := checkFixedHeader(buf[:headerBytes], nSections); err != nil {
		return nil, 0, err
	}
	tableLen := nSections*entryBytes + 4
	if len(buf) < headerBytes+tableLen {
		return nil, 0, fmt.Errorf("pfstore: truncated section table")
	}
	entries, err := parseTable(buf[headerBytes:headerBytes+tableLen], nSections)
	if err != nil {
		return nil, 0, err
	}
	return entries, le.Uint64(buf[16:]), nil
}

func checkFixedHeader(head []byte, nSections int) error {
	if string(head[:8]) != magic {
		return fmt.Errorf("pfstore: bad magic (not a collection file)")
	}
	le := binary.LittleEndian
	if v := le.Uint32(head[8:]); v != version {
		return fmt.Errorf("pfstore: unsupported format version %d (want %d)", v, version)
	}
	if crc32.ChecksumIEEE(head[:28]) != le.Uint32(head[28:]) {
		return fmt.Errorf("pfstore: header checksum mismatch")
	}
	if nSections < 1 || nSections > 1<<20 {
		return fmt.Errorf("pfstore: implausible section count %d", nSections)
	}
	return nil
}

func parseTable(table []byte, nSections int) ([]tableEntry, error) {
	le := binary.LittleEndian
	body := table[:nSections*entryBytes]
	if crc32.ChecksumIEEE(body) != le.Uint32(table[nSections*entryBytes:]) {
		return nil, fmt.Errorf("pfstore: section table checksum mismatch")
	}
	entries := make([]tableEntry, nSections)
	for i := range entries {
		b := body[i*entryBytes:]
		entries[i] = tableEntry{
			id:     le.Uint32(b),
			frag:   le.Uint32(b[4:]),
			offset: le.Uint64(b[8:]),
			length: le.Uint64(b[16:]),
			crc:    le.Uint32(b[24:]),
		}
	}
	return entries, nil
}

// parsePool decodes a pool section into surrogate-ordered strings. All
// strings share one backing copy of the blob — one allocation per pool.
func parsePool(b []byte) ([]string, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("short pool section")
	}
	le := binary.LittleEndian
	n := int(le.Uint32(b))
	if n < 0 || n > (len(b)-8)/4 {
		return nil, fmt.Errorf("implausible pool count %d", n)
	}
	offsEnd := 4 + 4*(n+1)
	if len(b) < offsEnd {
		return nil, fmt.Errorf("truncated pool offsets")
	}
	blob := string(b[offsEnd:])
	out := make([]string, n)
	prev := uint32(0)
	for i := 0; i < n+1; i++ {
		off := le.Uint32(b[4+4*i:])
		if off < prev || off > uint32(len(blob)) {
			return nil, fmt.Errorf("pool offsets not monotone")
		}
		if i > 0 {
			out[i-1] = blob[prev:off]
		}
		prev = off
	}
	if int(prev) != len(blob) {
		return nil, fmt.Errorf("pool blob length mismatch")
	}
	return out, nil
}

// checkFragment is the single linear pass that makes a fragment
// memory-safe to query: every index an accessor can derive from the
// columns stays in range, parents precede children (so root walks
// terminate), the attribute table is sorted, and every surrogate points
// into its pool. Deeper structural properties (children tiling, level
// arithmetic) are already guaranteed by the checksums for files written
// by Save; a hand-crafted file that lies about them yields wrong answers,
// never unsafe ones.
func checkFragment(f *xenc.Fragment, pools [4][]string) error {
	n := int32(f.NodeCount())
	nTags, nTexts := int32(len(pools[0])), int32(len(pools[2]))
	for p := int32(0); p < n; p++ {
		if f.Size[p] < 0 || f.Size[p] > n-1-p {
			return fmt.Errorf("node %d: size %d overflows fragment", p, f.Size[p])
		}
		if par := f.Parent[p]; par < -1 || par >= p {
			return fmt.Errorf("node %d: bad parent %d", p, par)
		}
		switch f.Kind[p] {
		case xenc.KindElem:
			if f.Prop[p] < 0 || f.Prop[p] >= nTags {
				return fmt.Errorf("node %d: tag surrogate %d out of pool", p, f.Prop[p])
			}
		case xenc.KindText, xenc.KindComment:
			if f.Prop[p] < 0 || f.Prop[p] >= nTexts {
				return fmt.Errorf("node %d: text surrogate %d out of pool", p, f.Prop[p])
			}
		case xenc.KindDoc:
			// Prop unused.
		default:
			return fmt.Errorf("node %d: invalid kind %d", p, f.Kind[p])
		}
	}
	nNames, nVals := int32(len(pools[1])), int32(len(pools[3]))
	for i := range f.AttrOwner {
		if o := f.AttrOwner[i]; o < 0 || o >= n {
			return fmt.Errorf("attribute %d: owner %d out of range", i, o)
		}
		if i > 0 && f.AttrOwner[i] < f.AttrOwner[i-1] {
			return fmt.Errorf("attribute table not sorted by owner at %d", i)
		}
		if v := f.AttrName[i]; v < 0 || v >= nNames {
			return fmt.Errorf("attribute %d: name surrogate %d out of pool", i, v)
		}
		if v := f.AttrVal[i]; v < 0 || v >= nVals {
			return fmt.Errorf("attribute %d: value surrogate %d out of pool", i, v)
		}
	}
	return nil
}
