package pfstore_test

// Round-trip property tier: shred → Save → Open must be observationally
// identical to shred alone. The XMark q01–q20 goldens pinned under
// internal/engine/testdata and the Table 2 dialect corpus both run
// against a store that took a trip through the on-disk columnar format,
// byte-comparing every serialized result.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathfinder/internal/core"
	"pathfinder/internal/corpus"
	"pathfinder/internal/engine"
	"pathfinder/internal/opt"
	"pathfinder/internal/pfstore"
	"pathfinder/internal/serialize"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

// goldenSF matches the engine golden tier, so the pinned files apply.
const goldenSF = 0.002

// saveReopen round-trips a store through the file format.
func saveReopen(t *testing.T, store *xenc.Store, name string) *xenc.Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), name+".pfc")
	if err := pfstore.Save(path, store, name, 1); err != nil {
		t.Fatalf("save: %v", err)
	}
	reopened, meta, err := pfstore.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if meta.Collection != name || meta.Generation != 1 {
		t.Fatalf("meta = %+v, want collection %q gen 1", meta, name)
	}
	return reopened
}

func evalOn(eng *engine.Engine, query, contextDoc string) (string, error) {
	plan, _, err := core.CompileQuery(query, xqcore.Options{ContextDoc: contextDoc})
	if err != nil {
		return "", err
	}
	if plan, err = opt.Optimize(plan); err != nil {
		return "", err
	}
	res, err := eng.EvalContext(context.Background(), plan)
	if err != nil {
		return "", err
	}
	return serialize.Result(eng.Store, res)
}

// TestXMarkGoldenAfterReopen: all twenty XMark queries over a reopened
// store match the pinned goldens byte for byte — the persisted encoding
// is the same relational data the shredder produced.
func TestXMarkGoldenAfterReopen(t *testing.T) {
	store := xenc.NewStore()
	if _, err := store.LoadDocumentString("xmark.xml", xmark.GenerateString(goldenSF)); err != nil {
		t.Fatal(err)
	}
	reopened := saveReopen(t, store, "xmark")
	eng := engine.NewWithConfig(reopened, engine.Config{Workers: 4, Check: true})

	for n := 1; n <= xmark.NumQueries; n++ {
		golden, err := os.ReadFile(filepath.Join("..", "engine", "testdata", "golden", fmt.Sprintf("q%02d.xml", n)))
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		want := strings.TrimSuffix(string(golden), "\n")
		got, err := evalOn(eng, xmark.Query(n), "xmark.xml")
		if err != nil {
			t.Fatalf("Q%d over reopened store: %v", n, err)
		}
		if got != want {
			t.Errorf("Q%d differs after reopen\n got  = %.300q\n want = %.300q", n, got, want)
		}
	}
}

// TestDialectCorpusReopenDifferential: every Table 2 corpus query returns
// identical bytes on the freshly shredded store and the reopened one —
// including the constructor queries, which extend the reopened store with
// new fragments at query time.
func TestDialectCorpusReopenDifferential(t *testing.T) {
	fresh := xenc.NewStore()
	if _, err := fresh.LoadDocumentString("auction.xml", corpus.AuctionDoc); err != nil {
		t.Fatal(err)
	}
	reopened := saveReopen(t, fresh, "auction")

	refEng := engine.NewWithConfig(fresh, engine.Config{Workers: 1, Check: true})
	gotEng := engine.NewWithConfig(reopened, engine.Config{Workers: 1, Check: true})
	for i, q := range corpus.Dialect {
		want, wantErr := evalOn(refEng, q, "auction.xml")
		got, gotErr := evalOn(gotEng, q, "auction.xml")
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("dialect[%d] %q: fresh err=%v, reopened err=%v", i, q, wantErr, gotErr)
			continue
		}
		if got != want {
			t.Errorf("dialect[%d] %q differs after reopen\n got  = %.300q\n want = %.300q", i, q, got, want)
		}
	}
}

// TestReopenedStoreStringContent spot-checks content resolution paths the
// query tier may not fully cover: string values, attribute access, and
// surrogate lookups against the lazily indexed pools.
func TestReopenedStoreStringContent(t *testing.T) {
	fresh := xenc.NewStore()
	if _, err := fresh.LoadDocumentString("auction.xml", corpus.AuctionDoc); err != nil {
		t.Fatal(err)
	}
	reopened := saveReopen(t, fresh, "auction")

	fdoc, _ := fresh.Doc("auction.xml")
	rdoc, err := reopened.Doc("auction.xml")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reopened.StringValue(rdoc), fresh.StringValue(fdoc); got != want {
		t.Errorf("string value differs: %q vs %q", got, want)
	}
	if got, want := reopened.TagID("person"), fresh.TagID("person"); got != want {
		t.Errorf("TagID(person) = %d, want %d", got, want)
	}
	if reopened.TagID("no-such-tag") != -1 {
		t.Error("unknown tag should miss")
	}
	if got, want := reopened.AttrNameID("id"), fresh.AttrNameID("id"); got != want {
		t.Errorf("AttrNameID(id) = %d, want %d", got, want)
	}
}
