package service

// FuzzNormalizeQuery guards the prepared-cache key normalizer. The cache
// keys every query the service ever sees by normalizeQuery's output, so
// the function must never panic on adversarial input, and its documented
// contract must hold:
//
//   - idempotence: normalizing a normalized query is the identity —
//     otherwise a client resubmitting the text the server echoed back
//     would miss the cache it just populated;
//   - constructor fallback: input whose first interesting rune is '<'
//     comes back verbatim (element-constructor whitespace is
//     significant, so such queries must never be rewritten);
//   - no growth: for valid UTF-8, normalization never lengthens the
//     text (it only collapses whitespace and strips comments).

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func FuzzNormalizeQuery(f *testing.F) {
	seeds := []string{
		"",
		"for $x in (1 to 10)  return $x",
		"count(/site/open_auctions/open_auction)",
		"for   $x\tin\n(1,2,3)\r\nreturn $x",
		`"a  doubled "" quote"`,
		`'single ''quoted'' literal'`,
		`(: comment :) 1 + 1`,
		`(: nested (: comment :) here :) 2`,
		`(: unterminated`,
		`"unterminated literal`,
		`<a>x  y</a>`,
		`1 < 2`,
		`concat("a", 'b', (: sep :) "c")`,
		"\x80\xfe invalid utf8 \"lit\"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		norm := normalizeQuery(src)

		if again := normalizeQuery(norm); again != norm {
			t.Fatalf("not idempotent:\n src: %q\nnorm: %q\ntwice: %q", src, norm, again)
		}

		// First interesting rune '<' → constructor fallback, verbatim.
		if i := strings.IndexAny(src, `<"'(`); i >= 0 && src[i] == '<' && norm != src {
			t.Fatalf("constructor input rewritten:\n src: %q\nnorm: %q", src, norm)
		}

		if utf8.ValidString(src) && len(norm) > len(src) {
			t.Fatalf("normalization grew the text:\n src: %q (%d bytes)\nnorm: %q (%d bytes)",
				src, len(src), norm, len(norm))
		}
	})
}
