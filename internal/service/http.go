package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// HTTP API. Status codes are part of the contract and the admission
// tests pin them:
//
//	POST /query       JSON {"query","collection","doc","timeout_ms","explain","session"}
//	                  → 200 {"result","stats":{...}} on success
//	POST /query/text  raw XQuery body, ?collection= &doc= &timeout_ms= query params
//	                  → 200 text/plain result
//	GET  /stats       → 200 service snapshot (admission, classes, sessions)
//	GET  /healthz     → 200 "ok", or 503 while draining
//
// Named collections (requires a persistent catalog, -store):
//
//	GET    /collections        → 200 {"collections":[{name,generation,...}]}
//	PUT    /collections/{name} raw XML body, ?doc= names the document
//	                           within the collection (default "doc.xml");
//	                           creates the collection or replaces the
//	                           document, persists, bumps the generation
//	                           → 200 {"name","generation","documents"}
//	DELETE /collections/{name} → 200 on removal, 404 if absent
//
// Error statuses (both query endpoints; JSON endpoint carries
// {"error","code","stage"}, text endpoint a plain-text message):
//
//	400  compile     the query failed to parse/compile/validate
//	404  not_found   the named collection does not exist
//	429  overloaded  rejected at admission: the wait queue is full
//	499  canceled    the client disconnected mid-query
//	500  exec        runtime evaluation failure
//	501               collection operation without a catalog configured
//	503  draining    the server is shutting down
//	504  timeout     the per-request deadline expired (Stage says whether
//	                 the query was still queued or already executing)
//
// Successful responses carry X-PF-Queue-Ms and X-PF-Exec-Ms headers, so
// the text endpoint exposes the same accounting as the JSON one.

// httpStatus maps a classified error code to its documented status.
func httpStatus(c Code) int {
	switch c {
	case CodeCompile:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeCanceled:
		return 499 // client closed request (nginx convention)
	case CodeDraining:
		return http.StatusServiceUnavailable
	case CodeTimeout:
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// queryJSON is the POST /query request body.
type queryJSON struct {
	Query      string `json:"query"`
	Collection string `json:"collection"`
	Doc        string `json:"doc"`
	TimeoutMs  int64  `json:"timeout_ms"`
	Explain    bool   `json:"explain"`
	Session    int64  `json:"session"`
}

// errorJSON is the JSON error envelope.
type errorJSON struct {
	Error string `json:"error"`
	Code  Code   `json:"code"`
	Stage string `json:"stage,omitempty"`
}

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQueryJSON)
	mux.HandleFunc("/query/text", s.handleQueryText)
	mux.HandleFunc("/collections", s.handleCollections)
	mux.HandleFunc("/collections/", s.handleCollection)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// maxQueryBytes bounds request bodies: a query text, not a document
// upload (documents arrive via the TCP LOAD command or preloading).
const maxQueryBytes = 1 << 20

func (s *Service) handleQueryJSON(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var q queryJSON
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes))
	if err == nil {
		err = json.Unmarshal(body, &q)
	}
	if err != nil {
		writeErrJSON(w, &Error{Code: CodeCompile, Err: fmt.Errorf("bad request body: %w", err)})
		return
	}
	req := Request{
		Query:      q.Query,
		Collection: q.Collection,
		ContextDoc: q.Doc,
		Timeout:    time.Duration(q.TimeoutMs) * time.Millisecond,
		Explain:    q.Explain,
		Session:    s.lookupSession(q.Session),
	}
	resp, qerr := s.Query(r.Context(), req)
	if qerr != nil {
		writeErrJSON(w, AsError(qerr))
		return
	}
	setAccountingHeaders(w, resp)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(resp) //nolint:errcheck — client gone mid-write is not actionable
}

func (s *Service) handleQueryText(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var timeout time.Duration
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			http.Error(w, "bad timeout_ms", http.StatusBadRequest)
			return
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	req := Request{
		Query:      string(body),
		Collection: r.URL.Query().Get("collection"),
		ContextDoc: r.URL.Query().Get("doc"),
		Timeout:    timeout,
	}
	resp, qerr := s.Query(r.Context(), req)
	if qerr != nil {
		se := AsError(qerr)
		http.Error(w, se.Error(), httpStatus(se.Code))
		return
	}
	setAccountingHeaders(w, resp)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, resp.Result) //nolint:errcheck — client gone mid-write is not actionable
}

// maxDocumentBytes bounds PUT /collections/{name} bodies — document
// uploads, matching the TCP LOAD command's limit.
const maxDocumentBytes = 256 << 20

func (s *Service) handleCollections(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	infos, err := s.Collections()
	if err != nil {
		writeCollectionsErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{"collections": infos}) //nolint:errcheck — client gone mid-write is not actionable
}

func (s *Service) handleCollection(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/collections/")
	if name == "" || strings.Contains(name, "/") {
		http.Error(w, "usage: /collections/{name}", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut:
		doc := r.URL.Query().Get("doc")
		if doc == "" {
			doc = "doc.xml"
		}
		res, err := s.PutDocument(name, doc, io.LimitReader(r.Body, maxDocumentBytes))
		if err != nil {
			writeCollectionsErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(res) //nolint:errcheck — client gone mid-write is not actionable
	case http.MethodDelete:
		if err := s.DeleteCollection(name); err != nil {
			writeCollectionsErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"deleted":true}`+"\n") //nolint:errcheck — client gone mid-write is not actionable
	default:
		http.Error(w, "PUT or DELETE only", http.StatusMethodNotAllowed)
	}
}

// writeCollectionsErr maps collection-endpoint failures: classified
// errors use their documented status, a missing catalog is 501.
func writeCollectionsErr(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrNoCatalog) {
		http.Error(w, err.Error(), http.StatusNotImplemented)
		return
	}
	writeErrJSON(w, AsError(err))
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats()) //nolint:errcheck — client gone mid-write is not actionable
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n") //nolint:errcheck — client gone mid-write is not actionable
}

// lookupSession resolves an optional numeric session id from the request
// body; unknown or zero ids run anonymously.
func (s *Service) lookupSession(id int64) *Session {
	if id == 0 {
		return nil
	}
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return s.sessions[id]
}

func setAccountingHeaders(w http.ResponseWriter, resp *Response) {
	w.Header().Set("X-PF-Queue-Ms", strconv.FormatFloat(resp.Stats.QueueMs, 'f', 3, 64))
	w.Header().Set("X-PF-Exec-Ms", strconv.FormatFloat(resp.Stats.ExecMs, 'f', 3, 64))
}

// writeErrJSON emits the JSON error envelope with the documented status.
func writeErrJSON(w http.ResponseWriter, se *Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(httpStatus(se.Code))
	msg := se.Error()
	if se.Err != nil {
		msg = se.Err.Error()
	}
	json.NewEncoder(w).Encode(errorJSON{Error: msg, Code: se.Code, Stage: se.Stage}) //nolint:errcheck
}
