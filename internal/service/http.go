package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// HTTP API. Status codes are part of the contract and the admission
// tests pin them:
//
//	POST /query       JSON {"query","doc","timeout_ms","explain","session"}
//	                  → 200 {"result","stats":{...}} on success
//	POST /query/text  raw XQuery body, ?doc= &timeout_ms= query params
//	                  → 200 text/plain result
//	GET  /stats       → 200 service snapshot (admission, classes, sessions)
//	GET  /healthz     → 200 "ok", or 503 while draining
//
// Error statuses (both query endpoints; JSON endpoint carries
// {"error","code","stage"}, text endpoint a plain-text message):
//
//	400  compile     the query failed to parse/compile/validate
//	429  overloaded  rejected at admission: the wait queue is full
//	499  canceled    the client disconnected mid-query
//	500  exec        runtime evaluation failure
//	503  draining    the server is shutting down
//	504  timeout     the per-request deadline expired (Stage says whether
//	                 the query was still queued or already executing)
//
// Successful responses carry X-PF-Queue-Ms and X-PF-Exec-Ms headers, so
// the text endpoint exposes the same accounting as the JSON one.

// httpStatus maps a classified error code to its documented status.
func httpStatus(c Code) int {
	switch c {
	case CodeCompile:
		return http.StatusBadRequest
	case CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeCanceled:
		return 499 // client closed request (nginx convention)
	case CodeDraining:
		return http.StatusServiceUnavailable
	case CodeTimeout:
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// queryJSON is the POST /query request body.
type queryJSON struct {
	Query     string `json:"query"`
	Doc       string `json:"doc"`
	TimeoutMs int64  `json:"timeout_ms"`
	Explain   bool   `json:"explain"`
	Session   int64  `json:"session"`
}

// errorJSON is the JSON error envelope.
type errorJSON struct {
	Error string `json:"error"`
	Code  Code   `json:"code"`
	Stage string `json:"stage,omitempty"`
}

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQueryJSON)
	mux.HandleFunc("/query/text", s.handleQueryText)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// maxQueryBytes bounds request bodies: a query text, not a document
// upload (documents arrive via the TCP LOAD command or preloading).
const maxQueryBytes = 1 << 20

func (s *Service) handleQueryJSON(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var q queryJSON
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes))
	if err == nil {
		err = json.Unmarshal(body, &q)
	}
	if err != nil {
		writeErrJSON(w, &Error{Code: CodeCompile, Err: fmt.Errorf("bad request body: %w", err)})
		return
	}
	req := Request{
		Query:      q.Query,
		ContextDoc: q.Doc,
		Timeout:    time.Duration(q.TimeoutMs) * time.Millisecond,
		Explain:    q.Explain,
		Session:    s.lookupSession(q.Session),
	}
	resp, qerr := s.Query(r.Context(), req)
	if qerr != nil {
		writeErrJSON(w, AsError(qerr))
		return
	}
	setAccountingHeaders(w, resp)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(resp) //nolint:errcheck — client gone mid-write is not actionable
}

func (s *Service) handleQueryText(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var timeout time.Duration
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			http.Error(w, "bad timeout_ms", http.StatusBadRequest)
			return
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	req := Request{
		Query:      string(body),
		ContextDoc: r.URL.Query().Get("doc"),
		Timeout:    timeout,
	}
	resp, qerr := s.Query(r.Context(), req)
	if qerr != nil {
		se := AsError(qerr)
		http.Error(w, se.Error(), httpStatus(se.Code))
		return
	}
	setAccountingHeaders(w, resp)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, resp.Result) //nolint:errcheck — client gone mid-write is not actionable
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats()) //nolint:errcheck — client gone mid-write is not actionable
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n") //nolint:errcheck — client gone mid-write is not actionable
}

// lookupSession resolves an optional numeric session id from the request
// body; unknown or zero ids run anonymously.
func (s *Service) lookupSession(id int64) *Session {
	if id == 0 {
		return nil
	}
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return s.sessions[id]
}

func setAccountingHeaders(w http.ResponseWriter, resp *Response) {
	w.Header().Set("X-PF-Queue-Ms", strconv.FormatFloat(resp.Stats.QueueMs, 'f', 3, 64))
	w.Header().Set("X-PF-Exec-Ms", strconv.FormatFloat(resp.Stats.ExecMs, 'f', 3, 64))
}

// writeErrJSON emits the JSON error envelope with the documented status.
func writeErrJSON(w http.ResponseWriter, se *Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(httpStatus(se.Code))
	msg := se.Error()
	if se.Err != nil {
		msg = se.Err.Error()
	}
	json.NewEncoder(w).Encode(errorJSON{Error: msg, Code: se.Code, Stage: se.Stage}) //nolint:errcheck
}
