package service

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrOverloaded is returned when a query cannot even be queued: the
// admission queue is at its configured bound. The HTTP layer maps it to
// 429 Too Many Requests.
var ErrOverloaded = errors.New("service overloaded: admission queue full")

// admitter is the per-service admission controller. It enforces three
// bounds over the shared engine:
//
//   - in-flight limit: at most MaxInFlight queries execute concurrently,
//     so a traffic burst queues instead of oversubscribing the worker
//     pool (Config.Workers is a *parallelism* budget; admission is the
//     *concurrency* budget on top of it);
//   - heavy cap: at most MaxHeavy queries whose estimated cost classifies
//     them as heavy run at once, so one XMark q11 per slot cannot occupy
//     every in-flight slot while a thousand point lookups wait;
//   - cost gate: the summed EstRows-derived cost of running queries stays
//     under CostBudget — the memory-estimate gate. A query costlier than
//     the whole budget is still admitted when the engine is otherwise
//     idle, so an oversized plan degrades to serial execution instead of
//     starving forever.
//
// Waiters park in arrival order; on every release the queue is scanned in
// order and every waiter whose bounds now pass is admitted. The scan
// deliberately skips blocked waiters, so a queued heavy never
// head-of-line-blocks the point lookups behind it.
type admitter struct {
	maxInFlight int
	maxHeavy    int
	maxQueue    int
	budget      int64

	mu            sync.Mutex
	inFlight      int
	heavyInFlight int
	costInUse     int64
	queue         []*waiter
}

type waiter struct {
	ch       chan struct{}
	cost     int64
	heavy    bool
	admitted bool
	canceled bool
}

func newAdmitter(maxInFlight, maxHeavy, maxQueue int, budget int64) *admitter {
	return &admitter{
		maxInFlight: maxInFlight,
		maxHeavy:    maxHeavy,
		maxQueue:    maxQueue,
		budget:      budget,
	}
}

// canAdmitLocked applies the three bounds to one candidate.
func (a *admitter) canAdmitLocked(cost int64, heavy bool) bool {
	if a.inFlight >= a.maxInFlight {
		return false
	}
	if heavy && a.heavyInFlight >= a.maxHeavy {
		return false
	}
	if a.costInUse+cost > a.budget && a.inFlight > 0 {
		return false
	}
	return true
}

func (a *admitter) admitLocked(cost int64, heavy bool) {
	a.inFlight++
	if heavy {
		a.heavyInFlight++
	}
	a.costInUse += cost
}

// Acquire blocks until the query may run, the context is done, or the
// queue bound rejects it outright. It returns the time spent queued.
func (a *admitter) Acquire(ctx context.Context, cost int64, heavy bool) (time.Duration, error) {
	a.mu.Lock()
	if a.canAdmitLocked(cost, heavy) {
		a.admitLocked(cost, heavy)
		a.mu.Unlock()
		return 0, nil
	}
	if len(a.queue) >= a.maxQueue {
		a.mu.Unlock()
		return 0, ErrOverloaded
	}
	w := &waiter{ch: make(chan struct{}), cost: cost, heavy: heavy}
	a.queue = append(a.queue, w)
	a.mu.Unlock()

	start := time.Now() //pfvet:allow determinism -- queue-wait accounting only
	select {
	case <-w.ch:
		return time.Since(start), nil //pfvet:allow determinism -- queue-wait accounting only
	case <-ctx.Done():
		a.mu.Lock()
		if w.admitted {
			// Raced with an admit: the slot is ours, give it back.
			a.mu.Unlock()
			a.Release(cost, heavy)
			return 0, ctx.Err()
		}
		w.canceled = true
		a.removeLocked(w)
		a.mu.Unlock()
		return 0, ctx.Err()
	}
}

// Release returns a query's slots and wakes every queued waiter that now
// fits, in arrival order.
func (a *admitter) Release(cost int64, heavy bool) {
	a.mu.Lock()
	a.inFlight--
	if heavy {
		a.heavyInFlight--
	}
	a.costInUse -= cost
	a.wakeLocked()
	a.mu.Unlock()
}

func (a *admitter) wakeLocked() {
	kept := a.queue[:0]
	for _, w := range a.queue {
		if w.canceled {
			continue
		}
		if a.canAdmitLocked(w.cost, w.heavy) {
			a.admitLocked(w.cost, w.heavy)
			w.admitted = true
			close(w.ch)
			continue
		}
		kept = append(kept, w)
	}
	// Zero the tail so dropped waiters are collectable.
	for i := len(kept); i < len(a.queue); i++ {
		a.queue[i] = nil
	}
	a.queue = kept
}

func (a *admitter) removeLocked(w *waiter) {
	for i, q := range a.queue {
		if q == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			return
		}
	}
}

// snapshot reports the controller's live state for /stats.
type admissionState struct {
	InFlight      int   `json:"in_flight"`
	HeavyInFlight int   `json:"heavy_in_flight"`
	Queued        int   `json:"queued"`
	CostInUse     int64 `json:"cost_in_use"`
	CostBudget    int64 `json:"cost_budget"`
	MaxInFlight   int   `json:"max_in_flight"`
	MaxHeavy      int   `json:"max_heavy"`
	MaxQueue      int   `json:"max_queue"`
}

func (a *admitter) snapshot() admissionState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return admissionState{
		InFlight:      a.inFlight,
		HeavyInFlight: a.heavyInFlight,
		Queued:        len(a.queue),
		CostInUse:     a.costInUse,
		CostBudget:    a.budget,
		MaxInFlight:   a.maxInFlight,
		MaxHeavy:      a.maxHeavy,
		MaxQueue:      a.maxQueue,
	}
}
