package service

// Regression tier for the prepared-statement cache under collection
// re-persists: the cache key carries (collection, generation), so a PUT
// must both miss the cache on the next request and forget the stale
// lowered plans (the engine.ForgetPlan path) — a cached plan compiled
// against generation N must never serve generation N+1, whose tag
// surrogates may differ.

import (
	"context"
	"strings"
	"testing"

	"pathfinder/internal/engine"
	"pathfinder/internal/pfstore"
	"pathfinder/internal/xenc"
)

func newCatalogService(t *testing.T) *Service {
	t.Helper()
	cat, err := pfstore.OpenCatalog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return New(xenc.NewStore(), Config{
		Engine:  engine.Config{Workers: 1, Check: true},
		Catalog: cat,
	})
}

func TestRepersistInvalidatesCachedPlans(t *testing.T) {
	s := newCatalogService(t)
	ctx := context.Background()
	put := func(doc string) {
		t.Helper()
		if _, err := s.PutDocument("c", "d.xml", strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	run := func(q string) *Response {
		t.Helper()
		resp, err := s.Query(ctx, Request{Query: q, Collection: "c"})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	put(`<team><member>Ada</member><member>Grace</member></team>`)
	const q = `count(//member)`

	if resp := run(q); resp.Stats.CachedPlan || resp.Result != "2" {
		t.Fatalf("first run: cached=%v result=%q, want fresh plan, 2", resp.Stats.CachedPlan, resp.Result)
	}
	if resp := run(q); !resp.Stats.CachedPlan {
		t.Fatal("second run should hit the prepared cache")
	}
	if n := s.Stats().PreparedPlans; n != 1 {
		t.Fatalf("prepared plans = %d, want 1", n)
	}
	keys := s.preparedKeys()
	if len(keys) != 1 || keys[0].Collection != "c" || keys[0].Generation != 1 {
		t.Fatalf("cache keys = %+v, want one entry for (c, gen 1)", keys)
	}

	// Re-persist: the member elements disappear, so a stale plan whose
	// surrogates resolved against generation 1 would return garbage.
	put(`<team><lead>Ada</lead></team>`)

	if got := s.preparedKeys(); len(got) != 0 {
		t.Fatalf("cache keys after re-persist = %+v, want none (ForgetPlan path)", got)
	}
	if n := s.Stats().PreparedPlans; n != 0 {
		t.Fatalf("prepared plans after re-persist = %d, want 0", n)
	}
	if resp := run(q); resp.Stats.CachedPlan || resp.Result != "0" {
		t.Fatalf("post-re-persist run: cached=%v result=%q, want fresh plan, 0", resp.Stats.CachedPlan, resp.Result)
	}
	if resp := run(`count(//lead)`); resp.Result != "1" {
		t.Fatalf("new content query = %q, want 1", resp.Result)
	}
	keys = s.preparedKeys()
	for _, k := range keys {
		if k.Generation != 2 {
			t.Errorf("stale-generation key survived: %+v", k)
		}
	}

	// Default-store requests (no collection) are keyed separately and
	// survive collection churn.
	if _, err := s.Engine().Store.LoadDocumentString("base.xml", `<base/>`); err != nil {
		t.Fatal(err)
	}
	if resp, err := s.Query(ctx, Request{Query: `count(doc("base.xml"))`}); err != nil || resp.Result != "1" {
		t.Fatalf("default-store query: %v %+v", err, resp)
	}
	put(`<team/>`)
	// Only the collection's plans went; the default-store entry survives.
	keys = s.preparedKeys()
	if len(keys) != 1 || keys[0].Collection != "" {
		t.Errorf("cache keys after final put = %+v, want only the default-store entry", keys)
	}
}

// TestQueryRequestKey pins the key derivation: context doc only matters
// for default-store requests, and generation always separates snapshots.
func TestQueryRequestKey(t *testing.T) {
	base := engine.QueryRequest{Query: "q", Collection: "c", ContextDoc: "ignored.xml"}
	k1 := base.Key("q", 1)
	if k1.ContextDoc != "" {
		t.Error("collection request must drop the context doc from the key")
	}
	if k2 := base.Key("q", 2); k1 == k2 {
		t.Error("generations must not collide")
	}
	d := engine.QueryRequest{Query: "q", ContextDoc: "a.xml"}
	if d.Key("q", 0).ContextDoc != "a.xml" {
		t.Error("default-store request must keep the context doc in the key")
	}
}
