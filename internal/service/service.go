// Package service turns the embedded engine into a multi-tenant query
// service: the §4 front-end/back-end setup grown into a front door.
// Concurrent sessions (HTTP and the MIL TCP protocol) share one engine
// and document store; every query passes a prepared-statement cache
// keyed by normalized query text, then per-query admission control — a
// bounded in-flight count plus a memory-estimate gate derived from the
// physical plan's EstRows — before it reaches the evaluator. Timeouts,
// client disconnects, and server drain all propagate through the
// engine's existing context threading, so a query that loses its client
// releases its workers mid-operator instead of running to completion.
package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/check"
	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/opt"
	"pathfinder/internal/pfstore"
	"pathfinder/internal/serialize"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xqcore"
)

// Config sizes the service. The zero value gets sane production defaults
// from (*Config).withDefaults; tests pin explicit small numbers.
type Config struct {
	// Engine is the evaluator configuration (worker pool, morsel size,
	// runtime checks); passed through to engine.NewWithConfig.
	Engine engine.Config

	// Catalog, when set, backs named collections: queries may address
	// collections by name, and the /collections HTTP endpoints persist and
	// drop them. Nil disables both (requests naming a collection fail with
	// CodeNotFound).
	Catalog *pfstore.Catalog

	// MaxInFlight bounds concurrently executing queries. 0 = 8.
	MaxInFlight int
	// MaxHeavy bounds concurrently executing heavy-class queries.
	// 0 = max(1, MaxInFlight/4).
	MaxHeavy int
	// MaxQueue bounds queries waiting for admission; beyond it requests
	// are rejected with ErrOverloaded (HTTP 429). 0 = 8*MaxInFlight.
	MaxQueue int
	// CostBudget is the admission memory gate: the summed EstCost of
	// running queries stays under it (one query may exceed it alone).
	// 0 = 4Mi cost units.
	CostBudget int64
	// HeavyCost classifies plans: estimated cost at or above it makes a
	// query heavy-class. 0 = CostBudget/4, calibrated so the XMark point
	// lookups (~600K cost units at default UnknownRows) stay light while
	// the join queries (q8–q10: 1.8M–4M) classify heavy.
	HeavyCost int64
	// UnknownRows is the cost charged per unknown-cardinality operator
	// when pricing a plan (physical.Plan.EstCost). 0 = 16384.
	UnknownRows int64

	// LegacyOptimizer disables the staged optimizer pipeline (join graph
	// isolation) and prepares plans with the single-shot peephole
	// optimizer instead — the pfserver `-no-opt-pipeline` escape hatch.
	LegacyOptimizer bool
	// MaxPrepared bounds the prepared-plan cache; when full, settled
	// entries are flushed and their lowered plans forgotten. 0 = 256.
	MaxPrepared int
	// DefaultTimeout bounds queries that do not request a timeout;
	// MaxTimeout caps what they may request. 0 = 30s / 2m.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.MaxHeavy <= 0 {
		c.MaxHeavy = c.MaxInFlight / 4
		if c.MaxHeavy < 1 {
			c.MaxHeavy = 1
		}
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8 * c.MaxInFlight
	}
	if c.CostBudget <= 0 {
		c.CostBudget = 4 << 20
	}
	if c.HeavyCost <= 0 {
		c.HeavyCost = c.CostBudget / 4
	}
	if c.UnknownRows <= 0 {
		c.UnknownRows = 16384
	}
	if c.MaxPrepared <= 0 {
		c.MaxPrepared = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	return c
}

// Code classifies a service error; the HTTP layer maps each code to a
// documented status (see Handler).
type Code string

const (
	CodeCompile    Code = "compile"    // parse/normalize/compile/validate failure → 400
	CodeNotFound   Code = "not_found"  // named collection does not exist → 404
	CodeOverloaded Code = "overloaded" // rejected: admission queue full → 429
	CodeTimeout    Code = "timeout"    // per-request deadline exceeded → 504
	CodeCanceled   Code = "canceled"   // client went away → 499
	CodeDraining   Code = "draining"   // server shutting down → 503
	CodeExec       Code = "exec"       // runtime evaluation failure → 500
)

// Error is a classified service failure. Stage records where the query
// died: "queued" (still waiting for admission) or "exec" (running).
type Error struct {
	Code  Code
	Stage string
	Err   error
}

func (e *Error) Error() string {
	if e.Stage != "" {
		return fmt.Sprintf("%s (%s): %v", e.Code, e.Stage, e.Err)
	}
	return fmt.Sprintf("%s: %v", e.Code, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// AsError extracts a *Error from err, or wraps it as CodeExec.
func AsError(err error) *Error {
	var se *Error
	if errors.As(err, &se) {
		return se
	}
	return &Error{Code: CodeExec, Err: err}
}

// Request is one query submission.
type Request struct {
	Query      string        // XQuery source text
	Collection string        // named catalog collection to evaluate against ("" = the default store)
	ContextDoc string        // document bound to absolute paths ("" = require fn:doc)
	Timeout    time.Duration // 0 = Config.DefaultTimeout; capped at MaxTimeout
	Explain    bool          // collect per-kernel counts (traced evaluation)
	Session    *Session      // accounting session; nil = anonymous
}

// engineRequest projects the service request onto the engine's request
// shape — the struct the prepared-statement cache key derives from.
func (r Request) engineRequest() engine.QueryRequest {
	return engine.QueryRequest{Query: r.Query, Collection: r.Collection, ContextDoc: r.ContextDoc}
}

// RequestStats is the per-request accounting returned with every result.
type RequestStats struct {
	QueueMs    float64        `json:"queue_ms"`
	ExecMs     float64        `json:"exec_ms"`
	Rows       int            `json:"rows"`
	PlanOps    int            `json:"plan_ops"`
	EstCost    int64          `json:"est_cost"`
	Class      string         `json:"class"` // "light" | "heavy"
	CachedPlan bool           `json:"cached_plan"`
	RowsMat    int            `json:"rows_materialized,omitempty"`
	Kernels    map[string]int `json:"kernels,omitempty"`
}

// Response is a successful execution: the serialized result plus its
// accounting.
type Response struct {
	Result string       `json:"result"`
	Stats  RequestStats `json:"stats"`
}

// prepared is one cache entry: the compiled, optimized, validated plan
// and its admission price. The once-guard makes concurrent first
// requests for the same query compile it exactly once; done flips when
// the once has settled, so eviction can tell a finished entry from one
// still compiling.
type prepared struct {
	once  sync.Once
	done  atomic.Bool
	plan  *algebra.Op
	ops   int
	cost  int64
	heavy bool
	err   error
}

// Service is the multi-tenant query front door over one engine.
type Service struct {
	cfg Config
	eng *engine.Engine
	cat *pfstore.Catalog
	adm *admitter
	met metrics

	// catMu serializes collection mutations (PUT/DELETE): each Put is a
	// clone-modify-publish sequence, and two concurrent Puts of the same
	// collection could otherwise both clone the same base and lose one
	// document.
	catMu sync.Mutex

	preparedMu sync.Mutex
	prepared   map[engine.PlanKey]*prepared // request-derived key → entry; bounded by MaxPrepared
	preparedN  atomic.Int64                 // successfully cached plans (stats gauge)

	// drainMu orders the draining flag against inFlight.Add: begin()
	// holds it while registering work, BeginDrain while flipping the
	// flag, so no Add can start once a drain has begun — the WaitGroup
	// reuse rule ("Add must not race a Wait from zero") stays satisfied
	// and no query slips in after Drain reports completion.
	drainMu  sync.Mutex
	draining atomic.Bool
	inFlight sync.WaitGroup // tracks admitted work for Drain

	sessMu    sync.Mutex
	sessions  map[int64]*Session
	sessNext  atomic.Int64
	sessTotal atomic.Int64
}

// New builds a service over a fresh engine on the given store.
func New(store *xenc.Store, cfg Config) *Service {
	cfg = cfg.withDefaults()
	if cfg.Catalog != nil && cfg.Engine.Catalog == nil {
		cfg.Engine.Catalog = cfg.Catalog
	}
	return &Service{
		cfg:      cfg,
		eng:      engine.NewWithConfig(store, cfg.Engine),
		cat:      cfg.Catalog,
		adm:      newAdmitter(cfg.MaxInFlight, cfg.MaxHeavy, cfg.MaxQueue, cfg.CostBudget),
		prepared: map[engine.PlanKey]*prepared{},
		sessions: map[int64]*Session{},
	}
}

// Engine exposes the underlying engine for preloading documents and for
// the tests' idle assertions.
func (s *Service) Engine() *engine.Engine { return s.eng }

// Session is one client's accounting scope: a TCP connection, or HTTP
// requests sharing an X-PF-Session header.
type Session struct {
	ID        int64     `json:"id"`
	Transport string    `json:"transport"`
	Started   time.Time `json:"started"`
	Queries   int64     `json:"queries"` // updated via atomic
}

// OpenSession registers a new session.
func (s *Service) OpenSession(transport string) *Session {
	sess := &Session{
		ID:        s.sessNext.Add(1),
		Transport: transport,
		Started:   time.Now(), //pfvet:allow determinism -- session accounting only
	}
	s.sessTotal.Add(1)
	s.sessMu.Lock()
	s.sessions[sess.ID] = sess
	s.sessMu.Unlock()
	return sess
}

// CloseSession unregisters a session.
func (s *Service) CloseSession(sess *Session) {
	if sess == nil {
		return
	}
	s.sessMu.Lock()
	delete(s.sessions, sess.ID)
	s.sessMu.Unlock()
}

// normalizeQuery collapses insignificant whitespace so trivially
// reformatted copies of one query share a prepared plan. It scans
// XQuery-aware: string literals keep their content exactly (including
// ""/” doubled-quote escapes), (: :) comments collapse to a single
// separator, and anything it cannot scan confidently falls back to the
// raw source text — in particular any '<', because a direct element
// constructor's content has significant whitespace (<a>x  y</a> differs
// from <a>x y</a>) and telling the constructor from the lt operator
// takes a parser. The fallback trades cache sharing for correctness:
// distinct queries must never share a key.
func normalizeQuery(src string) string {
	runes := []rune(src)
	var sb strings.Builder
	sb.Grow(len(src))
	space := false
	pad := func() {
		if space && sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		space = false
	}
	for i := 0; i < len(runes); i++ {
		switch r := runes[i]; r {
		case ' ', '\t', '\n', '\r':
			space = true
		case '<':
			return src // possible direct constructor: don't normalize
		case '"', '\'':
			pad()
			sb.WriteRune(r)
			i++
			for {
				if i >= len(runes) {
					return src // unterminated literal
				}
				c := runes[i]
				sb.WriteRune(c)
				if c == r {
					if i+1 < len(runes) && runes[i+1] == r {
						// Doubled-quote escape: still inside the literal.
						sb.WriteRune(r)
						i += 2
						continue
					}
					break
				}
				i++
			}
		case '(':
			if i+1 < len(runes) && runes[i+1] == ':' {
				depth := 1
				i += 2
				for ; i < len(runes); i++ {
					if runes[i] == '(' && i+1 < len(runes) && runes[i+1] == ':' {
						depth++
						i++
					} else if runes[i] == ':' && i+1 < len(runes) && runes[i+1] == ')' {
						depth--
						i++
						if depth == 0 {
							break
						}
					}
				}
				if depth != 0 {
					return src // unterminated comment
				}
				space = true // a comment separates tokens like whitespace
				continue
			}
			pad()
			sb.WriteRune(r)
		default:
			pad()
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// prepare resolves a query text to its cached plan, compiling, optimizing,
// statically validating, and pricing it on first use. The cache is
// bounded: at MaxPrepared entries the settled ones are flushed (and their
// lowered plans forgotten), and compile failures are never kept, so
// arbitrary garbage input cannot grow the cache or pin engine memory.
func (s *Service) prepare(req Request, generation uint64) (*prepared, bool, error) {
	// The key carries the collection's identity — name and store
	// generation — so re-persisting a collection naturally misses the
	// cache, and plans compiled against the replaced snapshot are evicted
	// rather than served.
	key := req.engineRequest().Key(normalizeQuery(req.Query), generation)
	s.preparedMu.Lock()
	p, hit := s.prepared[key]
	if !hit {
		if len(s.prepared) >= s.cfg.MaxPrepared {
			s.evictPreparedLocked()
		}
		p = &prepared{}
		s.prepared[key] = p
	}
	s.preparedMu.Unlock()
	p.once.Do(func() {
		defer p.done.Store(true)
		plan, _, err := core.CompileQuery(req.Query, xqcore.Options{ContextDoc: req.ContextDoc, Collection: req.Collection})
		if err == nil {
			if s.cfg.LegacyOptimizer {
				plan, err = opt.Peephole(plan)
			} else {
				plan, err = opt.Optimize(plan)
			}
		}
		if err == nil {
			err = check.Error(check.Plan(plan))
		}
		if err != nil {
			p.err = err
			return
		}
		p.plan = plan
		p.ops = algebra.CountOps(plan)
		// Price off the same lowered physical plan the executor will run;
		// the engine caches it by root, so this is the only lowering pass
		// the query ever pays.
		p.cost = s.eng.Lowered(plan).EstCost(s.cfg.UnknownRows)
		p.heavy = p.cost >= s.cfg.HeavyCost
		s.preparedN.Add(1)
	})
	if p.err != nil {
		// Don't negative-cache: drop the entry so failed compiles of
		// unbounded distinct garbage occupy no cache slot. Concurrent
		// waiters parked on the same entry still observe the error.
		s.preparedMu.Lock()
		if s.prepared[key] == p {
			delete(s.prepared, key)
		}
		s.preparedMu.Unlock()
		return nil, hit, p.err
	}
	return p, hit, nil
}

// evictPreparedLocked flushes every settled cache entry — mirroring the
// MIL server's progCache policy: a workload that overflows the cap has
// no reuse worth preserving — and releases the engine's lowered plan for
// each. Entries still compiling are kept: their plan is about to be
// handed to a caller, and forgetting a root the cache no longer tracks
// would pin it in the engine's plan cache forever. Callers hold
// preparedMu.
func (s *Service) evictPreparedLocked() {
	for k, old := range s.prepared {
		if !old.done.Load() {
			continue
		}
		if old.plan != nil {
			s.eng.ForgetPlan(old.plan)
			s.preparedN.Add(-1)
		}
		delete(s.prepared, k)
	}
}

// Query runs one request end to end: resolve the collection → prepare →
// admit → evaluate → serialize. All failures return a classified *Error.
func (s *Service) Query(ctx context.Context, req Request) (*Response, error) {
	s.met.received.Add(1)
	if !s.begin() {
		s.met.drainRejected.Add(1)
		return nil, &Error{Code: CodeDraining, Err: errors.New("server is draining")}
	}
	defer s.inFlight.Done()

	// Bind the evaluation to its collection's store snapshot up front: the
	// view pins one generation for the whole request, so a concurrent
	// re-persist cannot swap the store mid-query.
	view, gen, err := s.eng.ForCollection(req.Collection)
	if err != nil {
		s.met.compileErrors.Add(1)
		// Absent collection (or no catalog at all) is the client's 404;
		// anything else — checksum mismatch, unsupported version, I/O
		// fault opening a damaged file — is a server-side failure.
		if errors.Is(err, pfstore.ErrNotFound) || s.cat == nil {
			return nil, &Error{Code: CodeNotFound, Err: err}
		}
		return nil, &Error{Code: CodeExec, Err: err}
	}

	p, hit, err := s.prepare(req, gen)
	if err != nil {
		s.met.compileErrors.Add(1)
		return nil, &Error{Code: CodeCompile, Err: err}
	}
	if hit {
		s.met.cacheHits.Add(1)
	} else {
		s.met.cacheMisses.Add(1)
	}

	return s.run(ctx, execution{
		eng:     view,
		plan:    p.plan,
		ops:     p.ops,
		cost:    p.cost,
		heavy:   p.heavy,
		explain: req.Explain,
		cached:  hit,
		timeout: req.Timeout,
		sess:    req.Session,
	})
}

// QueryPlan runs a pre-compiled plan through the same admission path as a
// text query — the MIL TCP command, where the client shipped the plan
// itself. The plan is statically validated (it arrived over the wire) and
// priced off its lowered form before admission.
func (s *Service) QueryPlan(ctx context.Context, plan *algebra.Op, sess *Session) (*Response, error) {
	s.met.received.Add(1)
	if !s.begin() {
		s.met.drainRejected.Add(1)
		return nil, &Error{Code: CodeDraining, Err: errors.New("server is draining")}
	}
	defer s.inFlight.Done()

	if err := check.Error(check.Plan(plan)); err != nil {
		s.met.compileErrors.Add(1)
		return nil, &Error{Code: CodeCompile, Err: err}
	}
	cost := s.eng.Lowered(plan).EstCost(s.cfg.UnknownRows)
	return s.run(ctx, execution{
		eng:   s.eng,
		plan:  plan,
		ops:   algebra.CountOps(plan),
		cost:  cost,
		heavy: cost >= s.cfg.HeavyCost,
		sess:  sess,
	})
}

// execution is one admitted unit of work: a priced plan plus its request
// options, ready for the admission → evaluate → serialize pipeline. eng
// is the engine view bound to the request's collection — the shared
// engine itself for the default store.
type execution struct {
	eng     *engine.Engine
	plan    *algebra.Op
	ops     int
	cost    int64
	heavy   bool
	explain bool
	cached  bool
	timeout time.Duration
	sess    *Session
}

// run is the shared back half of Query and QueryPlan: clamp the timeout,
// pass admission, evaluate, serialize, account.
func (s *Service) run(ctx context.Context, ex execution) (*Response, error) {
	timeout := ex.timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	queueWait, err := s.adm.Acquire(ctx, ex.cost, ex.heavy)
	if err != nil {
		return nil, s.classifyAdmission(err)
	}
	defer s.adm.Release(ex.cost, ex.heavy)

	start := time.Now() //pfvet:allow determinism -- latency accounting only
	var (
		res     *bat.Table
		kernels map[string]int
		rowsMat int
	)
	if ex.explain {
		tbl, tr, terr := ex.eng.EvalTrace(ctx, ex.plan)
		err = terr
		res = tbl
		if tr != nil {
			kernels = map[string]int{}
			for _, st := range tr.Stats {
				if st.Kernel != "" {
					kernels[st.Kernel]++
				}
				rowsMat += st.RowsMat
			}
		}
	} else {
		res, err = ex.eng.EvalContext(ctx, ex.plan)
	}
	exec := time.Since(start) //pfvet:allow determinism -- latency accounting only
	if err != nil {
		return nil, s.classifyExec(ctx, err)
	}
	out, err := serialize.Result(ex.eng.Store, res)
	if err != nil {
		s.met.execErrors.Add(1)
		return nil, &Error{Code: CodeExec, Err: err}
	}

	s.met.completed.Add(1)
	cm := &s.met.light
	class := "light"
	if ex.heavy {
		cm, class = &s.met.heavy, "heavy"
	}
	cm.observe(queueWait, exec, res.Rows())
	if ex.sess != nil {
		atomic.AddInt64(&ex.sess.Queries, 1)
	}

	return &Response{
		Result: out,
		Stats: RequestStats{
			QueueMs:    float64(queueWait.Microseconds()) / 1000,
			ExecMs:     float64(exec.Microseconds()) / 1000,
			Rows:       res.Rows(),
			PlanOps:    ex.ops,
			EstCost:    ex.cost,
			Class:      class,
			CachedPlan: ex.cached,
			RowsMat:    rowsMat,
			Kernels:    kernels,
		},
	}, nil
}

// classifyAdmission maps an Acquire failure: queue-full is a rejection,
// a dead context while queued is a queued-stage timeout or cancellation.
func (s *Service) classifyAdmission(err error) *Error {
	switch {
	case errors.Is(err, ErrOverloaded):
		s.met.rejected.Add(1)
		return &Error{Code: CodeOverloaded, Stage: "queued", Err: err}
	case errors.Is(err, context.DeadlineExceeded):
		s.met.timeoutQueued.Add(1)
		return &Error{Code: CodeTimeout, Stage: "queued", Err: err}
	default:
		s.met.canceled.Add(1)
		return &Error{Code: CodeCanceled, Stage: "queued", Err: err}
	}
}

// classifyExec maps an evaluation failure. The engine wraps context
// errors in operator context, so the live ctx disambiguates deadline
// from disconnect.
func (s *Service) classifyExec(ctx context.Context, err error) *Error {
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded):
		s.met.timeoutExec.Add(1)
		return &Error{Code: CodeTimeout, Stage: "exec", Err: err}
	case errors.Is(err, context.Canceled) || errors.Is(ctx.Err(), context.Canceled):
		s.met.canceled.Add(1)
		return &Error{Code: CodeCanceled, Stage: "exec", Err: err}
	default:
		s.met.execErrors.Add(1)
		return &Error{Code: CodeExec, Stage: "exec", Err: err}
	}
}

// Stats snapshots the service for /stats.
func (s *Service) Stats() Stats {
	s.sessMu.Lock()
	active := len(s.sessions)
	s.sessMu.Unlock()
	return Stats{
		Queries: s.met.queryStats(),
		Classes: map[string]ClassStats{
			"light": s.met.light.stats(),
			"heavy": s.met.heavy.stats(),
		},
		Admission:      s.adm.snapshot(),
		PreparedPlans:  s.preparedN.Load(),
		ActiveSessions: active,
		TotalSessions:  s.sessTotal.Load(),
		EngineQueries:  s.eng.ActiveQueries(),
		EngineWorkers:  s.eng.ActiveWorkers(),
		Draining:       s.draining.Load(),
	}
}

// begin registers one query with the drain WaitGroup, refusing if a
// drain has begun. drainMu makes the flag check and the Add atomic with
// respect to BeginDrain — see the field comment.
func (s *Service) begin() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.inFlight.Add(1)
	return true
}

// BeginDrain flips the service into drain mode: new queries are rejected
// with CodeDraining while admitted ones run to completion. After it
// returns, no new query can register with the drain WaitGroup.
func (s *Service) BeginDrain() {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
}

// Draining reports whether the service is shutting down.
func (s *Service) Draining() bool { return s.draining.Load() }

// Drain waits until every in-flight query has finished or the context
// expires. Callers flip BeginDrain first.
func (s *Service) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.inFlight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return &Error{Code: CodeCanceled, Stage: "drain", Err: ctx.Err()}
	}
}
