package service

import (
	"context"

	"pathfinder/internal/algebra"
	"pathfinder/internal/engine"
	"pathfinder/internal/mil"
)

// NewMILServer returns a MIL TCP server sharing this service's engine,
// with every connection routed through the service: each TCP client gets
// an accounting session, and both the MIL and XQ commands pass the
// prepared-plan and admission paths exactly like HTTP requests.
func (s *Service) NewMILServer() *mil.Server {
	srv := mil.NewServerWith(s.eng)
	srv.Hooks = s
	srv.LegacyOptimizer = s.cfg.LegacyOptimizer
	return srv
}

// ConnOpened implements mil.ConnHooks: one session per TCP connection.
func (s *Service) ConnOpened() mil.ConnSession {
	return &milSession{s: s, sess: s.OpenSession("tcp")}
}

// milSession adapts one TCP connection to the service's execution paths.
type milSession struct {
	s    *Service
	sess *Session
}

func (m *milSession) ExecQuery(ctx context.Context, req engine.QueryRequest) (string, error) {
	resp, err := m.s.Query(ctx, Request{
		Query:      req.Query,
		Collection: req.Collection,
		ContextDoc: req.ContextDoc,
		Session:    m.sess,
	})
	if err != nil {
		return "", err
	}
	return resp.Result, nil
}

func (m *milSession) ExecPlan(ctx context.Context, plan *algebra.Op) (string, error) {
	resp, err := m.s.QueryPlan(ctx, plan, m.sess)
	if err != nil {
		return "", err
	}
	return resp.Result, nil
}

func (m *milSession) Close() { m.s.CloseSession(m.sess) }
