package service_test

// Robustness tier: mixed concurrent clients, mid-query disconnects on
// both transports, server-side timeouts, admission saturation, and drain
// — each asserting the scheduler returns to idle (no leaked queries or
// workers) and that later queries still succeed.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pathfinder/internal/corpus"
	"pathfinder/internal/engine"
	"pathfinder/internal/service"
	"pathfinder/internal/xenc"
)

// slowQuery runs ~350ms on one core (640k-row cross product); the engine
// polls its context every few thousand rows, so cancellation lands fast.
const slowQuery = `count(for $x in (1 to 800) for $y in (1 to 800) return 1)`
const slowAnswer = "640000"

// tinyQuery is the light class: a point lookup on the miniature doc.
const tinyQuery = `count(/site/open_auctions/open_auction)`

func waitIdle(t *testing.T, svc *service.Service) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if svc.Engine().ActiveQueries() == 0 && svc.Engine().ActiveWorkers() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("engine never returned to idle: queries=%d workers=%d",
		svc.Engine().ActiveQueries(), svc.Engine().ActiveWorkers())
}

func newSvc(t *testing.T, cfg service.Config) *service.Service {
	t.Helper()
	store := xenc.NewStore()
	if _, err := store.LoadDocumentString("auction.xml", corpus.AuctionDoc); err != nil {
		t.Fatal(err)
	}
	return service.New(store, cfg)
}

// TestConcurrentMixedClients: M clients × mixed dialect + slow queries,
// all results correct, engine idle afterwards. The race tier runs this
// under -race.
func TestConcurrentMixedClients(t *testing.T) {
	h := newHarness(t, 8, map[string]string{"auction.xml": corpus.AuctionDoc})
	ref := refEngine(t, 8, map[string]string{"auction.xml": corpus.AuctionDoc})

	// Precompute expected outputs once.
	queries := corpus.Dialect[:12]
	want := make([]string, len(queries))
	for i, q := range queries {
		out, err := embedEval(ref, q, "auction.xml")
		if err != nil {
			t.Fatalf("reference eval %q: %v", q, err)
		}
		want[i] = out
	}

	const clients = 8
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Half the clients speak HTTP, half TCP.
			var exec func(q string) (string, error)
			if c%2 == 0 {
				exec = func(q string) (string, error) {
					code, got := h.queryJSON(t, q, "auction.xml")
					if code != http.StatusOK {
						return "", fmt.Errorf("status %d: %s", code, got)
					}
					return got, nil
				}
			} else {
				tcp := h.dialTCP(t)
				exec = func(q string) (string, error) { return tcp.ExecXQ(q, "auction.xml") }
			}
			for round := 0; round < 4; round++ {
				i := (c + round) % len(queries)
				got, err := exec(queries[i])
				if err != nil {
					errc <- fmt.Errorf("client %d round %d: %v", c, round, err)
					return
				}
				if got != want[i] {
					errc <- fmt.Errorf("client %d round %d: %q != %q", c, round, got, want[i])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	waitIdle(t, h.svc)
}

// TestServerTimeoutCancelsPromptly: a query past its deadline dies with
// the documented timeout code, the scheduler drains, and the next query
// succeeds.
func TestServerTimeoutCancelsPromptly(t *testing.T) {
	svc := newSvc(t, service.Config{Engine: engine.Config{Workers: 4}})
	start := time.Now()
	_, err := svc.Query(context.Background(), service.Request{
		Query: slowQuery, ContextDoc: "auction.xml", Timeout: 50 * time.Millisecond,
	})
	elapsed := time.Since(start)
	se := service.AsError(err)
	if err == nil || se.Code != service.CodeTimeout || se.Stage != "exec" {
		t.Fatalf("want exec-stage timeout, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timeout enforced only after %v", elapsed)
	}
	waitIdle(t, svc)
	if st := svc.Stats(); st.Queries.TimeoutExec != 1 {
		t.Fatalf("timeout_exec = %d, want 1", st.Queries.TimeoutExec)
	}
	resp, err := svc.Query(context.Background(), service.Request{Query: tinyQuery, ContextDoc: "auction.xml"})
	if err != nil {
		t.Fatalf("query after timeout: %v", err)
	}
	if resp.Result == "" {
		t.Fatal("empty result after timeout")
	}
}

// TestHTTPDisconnectCancels: an HTTP client that goes away mid-query
// cancels the evaluation; the service records it and stays healthy.
func TestHTTPDisconnectCancels(t *testing.T) {
	h := newHarness(t, 4, map[string]string{"auction.xml": corpus.AuctionDoc})
	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(map[string]any{"query": slowQuery, "doc": "auction.xml"})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.httpSrv.URL+"/query", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("request survived its own cancellation")
	}
	waitIdle(t, h.svc)
	deadline := time.Now().Add(5 * time.Second)
	for svc := h.svc; svc.Stats().Queries.Canceled == 0; {
		if time.Now().After(deadline) {
			t.Fatalf("cancellation not recorded: %+v", svc.Stats().Queries)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, got := h.queryText(t, tinyQuery, "auction.xml"); code != http.StatusOK {
		t.Fatalf("query after disconnect: status=%d %q", code, got)
	}
}

// TestTCPDisconnectCancels: a TCP client that drops mid-XQ cancels the
// in-flight evaluation via the connection context.
func TestTCPDisconnectCancels(t *testing.T) {
	h := newHarness(t, 4, map[string]string{"auction.xml": corpus.AuctionDoc})
	conn, err := net.Dial("tcp", h.tcpAddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Fprintf(conn, "XQ %d auction.xml\n%s", len(slowQuery), slowQuery); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	conn.Close() // vanish mid-query

	waitIdle(t, h.svc)
	// The dropped session must be unregistered and later clients served.
	deadline := time.Now().Add(5 * time.Second)
	for h.svc.Stats().ActiveSessions != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("dropped session still registered: %d", h.svc.Stats().ActiveSessions)
		}
		time.Sleep(5 * time.Millisecond)
	}
	tcp := h.dialTCP(t)
	if got, err := tcp.ExecXQ(slowQuery, "auction.xml"); err != nil || got != slowAnswer {
		t.Fatalf("query after disconnect: %q, %v", got, err)
	}
}

// TestAdmissionSaturation (the status-code contract): with one execution
// slot and one queue slot, a burst sees exactly the documented outcomes —
// the runner 200, the queued query 504 (stage queued) when its deadline
// fires first, the overflow 429.
func TestAdmissionSaturation(t *testing.T) {
	svc := newSvc(t, service.Config{
		Engine:      engine.Config{Workers: 4},
		MaxInFlight: 1,
		MaxQueue:    1,
		HeavyCost:   1 << 40, // classification out of the way: everything light
	})

	runnerDone := make(chan error, 1)
	go func() {
		_, err := svc.Query(context.Background(), service.Request{Query: slowQuery, ContextDoc: "auction.xml"})
		runnerDone <- err
	}()
	waitFor(t, "runner in flight", func() bool { return svc.Stats().Admission.InFlight == 1 })

	queuedDone := make(chan error, 1)
	go func() {
		_, err := svc.Query(context.Background(), service.Request{
			Query: tinyQuery, ContextDoc: "auction.xml", Timeout: 60 * time.Millisecond,
		})
		queuedDone <- err
	}()
	waitFor(t, "second query queued", func() bool { return svc.Stats().Admission.Queued == 1 })

	// Queue full: the third query is rejected immediately with 429.
	_, err := svc.Query(context.Background(), service.Request{Query: tinyQuery, ContextDoc: "auction.xml"})
	se := service.AsError(err)
	if err == nil || se.Code != service.CodeOverloaded || !errors.Is(err, service.ErrOverloaded) {
		t.Fatalf("overflow: want CodeOverloaded, got %v", err)
	}

	// The queued query's deadline fires while it waits: 504, stage queued.
	se = service.AsError(<-queuedDone)
	if se == nil || se.Code != service.CodeTimeout || se.Stage != "queued" {
		t.Fatalf("queued: want queued-stage timeout, got %v", se)
	}

	if err := <-runnerDone; err != nil {
		t.Fatalf("runner: %v", err)
	}
	waitIdle(t, svc)
	st := svc.Stats()
	if st.Queries.Rejected != 1 || st.Queries.TimeoutQueued != 1 || st.Queries.Completed != 1 {
		t.Fatalf("counter mismatch: %+v", st.Queries)
	}
}

// TestLightsBypassQueuedHeavies: with the heavy cap saturated and heavies
// queued, point lookups keep completing within a bound — the no-starvation
// guarantee the admission controller exists for.
func TestLightsBypassQueuedHeavies(t *testing.T) {
	svc := newSvc(t, service.Config{
		Engine:      engine.Config{Workers: 4},
		MaxInFlight: 4,
		MaxHeavy:    1,
		MaxQueue:    8,
		// Between the measured costs: the cross product (~426K units at
		// default UnknownRows) classifies heavy, the point lookup (~246K)
		// light.
		HeavyCost: 300_000,
	})

	const heavies = 3
	heavyDone := make(chan error, heavies)
	for i := 0; i < heavies; i++ {
		go func() {
			_, err := svc.Query(context.Background(), service.Request{Query: slowQuery, ContextDoc: "auction.xml"})
			heavyDone <- err
		}()
	}
	waitFor(t, "heavies queued behind the cap", func() bool {
		a := svc.Stats().Admission
		return a.HeavyInFlight == 1 && a.Queued == heavies-1
	})

	// While heavies queue, lights must flow: each completes well under the
	// time one heavy needs.
	for i := 0; i < 5; i++ {
		start := time.Now()
		resp, err := svc.Query(context.Background(), service.Request{
			Query: tinyQuery, ContextDoc: "auction.xml", Timeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatalf("light %d while heavies queued: %v", i, err)
		}
		if resp.Stats.Class != "light" {
			t.Fatalf("light %d classified %q (cost=%d)", i, resp.Stats.Class, resp.Stats.EstCost)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("light %d took %v", i, d)
		}
	}
	if q := svc.Stats().Admission.Queued; q == 0 {
		t.Log("note: heavies drained before the lights finished; bypass not exercised this run")
	}

	for i := 0; i < heavies; i++ {
		if err := <-heavyDone; err != nil {
			t.Fatalf("heavy: %v", err)
		}
	}
	waitIdle(t, svc)
	st := svc.Stats()
	if st.Classes["heavy"].Completed != heavies || st.Classes["light"].Completed != 5 {
		t.Fatalf("class counts: %+v", st.Classes)
	}
}

// TestDrainLifecycle: BeginDrain rejects new work with the draining code
// while letting admitted queries finish; Drain returns once they have.
func TestDrainLifecycle(t *testing.T) {
	svc := newSvc(t, service.Config{Engine: engine.Config{Workers: 4}})
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := svc.Query(context.Background(), service.Request{Query: slowQuery, ContextDoc: "auction.xml"})
		done <- err
	}()
	<-started
	waitFor(t, "query admitted", func() bool { return svc.Stats().Admission.InFlight == 1 })

	svc.BeginDrain()
	_, err := svc.Query(context.Background(), service.Request{Query: tinyQuery, ContextDoc: "auction.xml"})
	if se := service.AsError(err); err == nil || se.Code != service.CodeDraining {
		t.Fatalf("query during drain: want CodeDraining, got %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight query during drain: %v", err)
	}
	waitIdle(t, svc)
}

// TestDrainRace: queries racing BeginDrain+Drain must never trip the
// WaitGroup reuse panic, and once Drain returns nothing is executing —
// every racer was either drained to completion or rejected before it
// touched the engine. The race tier runs this under -race.
func TestDrainRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		svc := newSvc(t, service.Config{Engine: engine.Config{Workers: 2}})
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				_, err := svc.Query(context.Background(),
					service.Request{Query: tinyQuery, ContextDoc: "auction.xml"})
				if err != nil && service.AsError(err).Code != service.CodeDraining {
					t.Errorf("racing query: %v", err)
				}
			}()
		}
		close(start)
		svc.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := svc.Drain(ctx)
		cancel()
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
		if n := svc.Engine().ActiveQueries(); n != 0 {
			t.Fatalf("query still executing after Drain returned: %d", n)
		}
		wg.Wait()
	}
}

// TestCompileErrorsAndCaching: bad queries 400 on every transport and the
// prepared cache counts hits across reformatted copies.
func TestCompileErrorsAndCaching(t *testing.T) {
	h := newHarness(t, 4, map[string]string{"auction.xml": corpus.AuctionDoc})
	if code, body := h.queryJSON(t, "for $x in", "auction.xml"); code != http.StatusBadRequest {
		t.Fatalf("bad query: status=%d %q", code, body)
	}
	tcp := h.dialTCP(t)
	if _, err := tcp.ExecXQ("for $x in", "auction.xml"); err == nil {
		t.Fatal("bad query over TCP succeeded")
	}

	// Same query, three formattings: one prepared plan, two cache hits.
	// Normalization collapses whitespace runs (it does not remove them),
	// so these three differ only in run length and share one plan.
	variants := []string{
		"count( /site/open_auctions/open_auction )",
		"count(  /site/open_auctions/open_auction  )",
		"count(\n\t/site/open_auctions/open_auction\n)",
	}
	before := h.svc.Stats()
	for _, q := range variants {
		if code, body := h.queryText(t, q, "auction.xml"); code != http.StatusOK {
			t.Fatalf("%q: status=%d %q", q, code, body)
		}
	}
	after := h.svc.Stats()
	if misses := after.Queries.CacheMisses - before.Queries.CacheMisses; misses != 1 {
		t.Errorf("cache misses for 3 formattings = %d, want 1", misses)
	}
	if hits := after.Queries.CacheHits - before.Queries.CacheHits; hits != 2 {
		t.Errorf("cache hits for 3 formattings = %d, want 2", hits)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
