package service

import (
	"context"
	"errors"
	"testing"
	"time"
)

// acquireAsync starts an Acquire and reports its completion.
func acquireAsync(a *admitter, ctx context.Context, cost int64, heavy bool) chan error {
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, cost, heavy)
		done <- err
	}()
	return done
}

func mustAdmitted(t *testing.T, done chan error, what string) {
	t.Helper()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("%s: never admitted", what)
	}
}

func mustQueued(t *testing.T, a *admitter, done chan error, what string) {
	t.Helper()
	select {
	case err := <-done:
		t.Fatalf("%s: expected to queue, returned %v", what, err)
	case <-time.After(20 * time.Millisecond):
	}
	if a.snapshot().Queued == 0 {
		t.Fatalf("%s: not in queue", what)
	}
}

func TestAdmitterInFlightBound(t *testing.T) {
	a := newAdmitter(2, 2, 4, 1<<30)
	ctx := context.Background()
	mustAdmitted(t, acquireAsync(a, ctx, 1, false), "first")
	mustAdmitted(t, acquireAsync(a, ctx, 1, false), "second")
	third := acquireAsync(a, ctx, 1, false)
	mustQueued(t, a, third, "third")
	a.Release(1, false)
	mustAdmitted(t, third, "third after release")
}

func TestAdmitterQueueFullRejects(t *testing.T) {
	a := newAdmitter(1, 1, 1, 1<<30)
	ctx := context.Background()
	mustAdmitted(t, acquireAsync(a, ctx, 1, false), "first")
	second := acquireAsync(a, ctx, 1, false)
	mustQueued(t, a, second, "second")
	if _, err := a.Acquire(ctx, 1, false); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full acquire: want ErrOverloaded, got %v", err)
	}
	a.Release(1, false)
	mustAdmitted(t, second, "second after release")
	a.Release(1, false)
}

// TestAdmitterSkipScanLetsLightsPass is the no-head-of-line-blocking
// guarantee: a heavy parked on the heavy cap does not block the light
// queued behind it.
func TestAdmitterSkipScanLetsLightsPass(t *testing.T) {
	a := newAdmitter(2, 1, 8, 1<<30)
	ctx := context.Background()
	mustAdmitted(t, acquireAsync(a, ctx, 1, true), "heavy1")
	mustAdmitted(t, acquireAsync(a, ctx, 1, false), "light1")
	// Both slots busy: heavy2 waits on the heavy cap AND a slot, light2
	// (arriving later) waits on a slot only.
	heavy2 := acquireAsync(a, ctx, 1, true)
	mustQueued(t, a, heavy2, "heavy2")
	light2 := acquireAsync(a, ctx, 1, false)
	mustQueued(t, a, light2, "light2")

	// Freeing light1's slot must admit light2 past the queued heavy2,
	// which is still capped by the running heavy1.
	a.Release(1, false)
	mustAdmitted(t, light2, "light2 past queued heavy")
	select {
	case err := <-heavy2:
		t.Fatalf("heavy2 admitted past the heavy cap: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	a.Release(1, true) // heavy1 done: heavy2's turn
	mustAdmitted(t, heavy2, "heavy2 after heavy slot freed")
}

func TestAdmitterCostGate(t *testing.T) {
	a := newAdmitter(8, 8, 8, 100)
	ctx := context.Background()
	mustAdmitted(t, acquireAsync(a, ctx, 60, false), "first 60")
	second := acquireAsync(a, ctx, 60, false)
	mustQueued(t, a, second, "second 60 over budget")
	a.Release(60, false)
	mustAdmitted(t, second, "second after budget freed")
	a.Release(60, false)

	// A plan costlier than the whole budget still runs when the engine is
	// idle: the gate degrades to serial execution, not starvation.
	mustAdmitted(t, acquireAsync(a, ctx, 1000, false), "oversized while idle")
	a.Release(1000, false)
}

func TestAdmitterCancelWhileQueued(t *testing.T) {
	a := newAdmitter(1, 1, 8, 1<<30)
	mustAdmitted(t, acquireAsync(a, context.Background(), 1, false), "first")
	ctx, cancel := context.WithCancel(context.Background())
	second := acquireAsync(a, ctx, 1, false)
	mustQueued(t, a, second, "second")
	cancel()
	select {
	case err := <-second:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter never returned")
	}
	if q := a.snapshot().Queued; q != 0 {
		t.Fatalf("canceled waiter still queued: %d", q)
	}
	// The slot is intact: release and re-acquire.
	a.Release(1, false)
	mustAdmitted(t, acquireAsync(a, context.Background(), 1, false), "after cancel")
	a.Release(1, false)
	if s := a.snapshot(); s.InFlight != 0 || s.CostInUse != 0 {
		t.Fatalf("leaked admission state: %+v", s)
	}
}

func TestNormalizeQuery(t *testing.T) {
	cases := []struct{ in, want string }{
		{"for $x in /a return $x", "for $x in /a return $x"},
		{"  for   $x\n\tin /a\n return $x ", "for $x in /a return $x"},
		{`"a  b"`, `"a  b"`},
		{`concat("x  y",   'p  q')`, `concat("x  y", 'p  q')`},
		{"a\r\nb", "a b"},
	}
	for _, c := range cases {
		if got := normalizeQuery(c.in); got != c.want {
			t.Errorf("normalizeQuery(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if normalizeQuery("for  $x") != normalizeQuery("for $x") {
		t.Error("reformatted copies must normalize equal")
	}
	if normalizeQuery(`"a  b"`) == normalizeQuery(`"a b"`) {
		t.Error("literal whitespace must stay significant")
	}
}
