package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"pathfinder/internal/xenc"
)

// acquireAsync starts an Acquire and reports its completion.
func acquireAsync(a *admitter, ctx context.Context, cost int64, heavy bool) chan error {
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, cost, heavy)
		done <- err
	}()
	return done
}

func mustAdmitted(t *testing.T, done chan error, what string) {
	t.Helper()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("%s: never admitted", what)
	}
}

func mustQueued(t *testing.T, a *admitter, done chan error, what string) {
	t.Helper()
	select {
	case err := <-done:
		t.Fatalf("%s: expected to queue, returned %v", what, err)
	case <-time.After(20 * time.Millisecond):
	}
	if a.snapshot().Queued == 0 {
		t.Fatalf("%s: not in queue", what)
	}
}

func TestAdmitterInFlightBound(t *testing.T) {
	a := newAdmitter(2, 2, 4, 1<<30)
	ctx := context.Background()
	mustAdmitted(t, acquireAsync(a, ctx, 1, false), "first")
	mustAdmitted(t, acquireAsync(a, ctx, 1, false), "second")
	third := acquireAsync(a, ctx, 1, false)
	mustQueued(t, a, third, "third")
	a.Release(1, false)
	mustAdmitted(t, third, "third after release")
}

func TestAdmitterQueueFullRejects(t *testing.T) {
	a := newAdmitter(1, 1, 1, 1<<30)
	ctx := context.Background()
	mustAdmitted(t, acquireAsync(a, ctx, 1, false), "first")
	second := acquireAsync(a, ctx, 1, false)
	mustQueued(t, a, second, "second")
	if _, err := a.Acquire(ctx, 1, false); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full acquire: want ErrOverloaded, got %v", err)
	}
	a.Release(1, false)
	mustAdmitted(t, second, "second after release")
	a.Release(1, false)
}

// TestAdmitterSkipScanLetsLightsPass is the no-head-of-line-blocking
// guarantee: a heavy parked on the heavy cap does not block the light
// queued behind it.
func TestAdmitterSkipScanLetsLightsPass(t *testing.T) {
	a := newAdmitter(2, 1, 8, 1<<30)
	ctx := context.Background()
	mustAdmitted(t, acquireAsync(a, ctx, 1, true), "heavy1")
	mustAdmitted(t, acquireAsync(a, ctx, 1, false), "light1")
	// Both slots busy: heavy2 waits on the heavy cap AND a slot, light2
	// (arriving later) waits on a slot only.
	heavy2 := acquireAsync(a, ctx, 1, true)
	mustQueued(t, a, heavy2, "heavy2")
	light2 := acquireAsync(a, ctx, 1, false)
	mustQueued(t, a, light2, "light2")

	// Freeing light1's slot must admit light2 past the queued heavy2,
	// which is still capped by the running heavy1.
	a.Release(1, false)
	mustAdmitted(t, light2, "light2 past queued heavy")
	select {
	case err := <-heavy2:
		t.Fatalf("heavy2 admitted past the heavy cap: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	a.Release(1, true) // heavy1 done: heavy2's turn
	mustAdmitted(t, heavy2, "heavy2 after heavy slot freed")
}

func TestAdmitterCostGate(t *testing.T) {
	a := newAdmitter(8, 8, 8, 100)
	ctx := context.Background()
	mustAdmitted(t, acquireAsync(a, ctx, 60, false), "first 60")
	second := acquireAsync(a, ctx, 60, false)
	mustQueued(t, a, second, "second 60 over budget")
	a.Release(60, false)
	mustAdmitted(t, second, "second after budget freed")
	a.Release(60, false)

	// A plan costlier than the whole budget still runs when the engine is
	// idle: the gate degrades to serial execution, not starvation.
	mustAdmitted(t, acquireAsync(a, ctx, 1000, false), "oversized while idle")
	a.Release(1000, false)
}

func TestAdmitterCancelWhileQueued(t *testing.T) {
	a := newAdmitter(1, 1, 8, 1<<30)
	mustAdmitted(t, acquireAsync(a, context.Background(), 1, false), "first")
	ctx, cancel := context.WithCancel(context.Background())
	second := acquireAsync(a, ctx, 1, false)
	mustQueued(t, a, second, "second")
	cancel()
	select {
	case err := <-second:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter never returned")
	}
	if q := a.snapshot().Queued; q != 0 {
		t.Fatalf("canceled waiter still queued: %d", q)
	}
	// The slot is intact: release and re-acquire.
	a.Release(1, false)
	mustAdmitted(t, acquireAsync(a, context.Background(), 1, false), "after cancel")
	a.Release(1, false)
	if s := a.snapshot(); s.InFlight != 0 || s.CostInUse != 0 {
		t.Fatalf("leaked admission state: %+v", s)
	}
}

func TestNormalizeQuery(t *testing.T) {
	cases := []struct{ in, want string }{
		{"for $x in /a return $x", "for $x in /a return $x"},
		{"  for   $x\n\tin /a\n return $x ", "for $x in /a return $x"},
		{`"a  b"`, `"a  b"`},
		{`concat("x  y",   'p  q')`, `concat("x  y", 'p  q')`},
		{"a\r\nb", "a b"},
		// Doubled-quote escapes stay inside the literal.
		{`"a""b"  c`, `"a""b" c`},
		{`'p''q'   r`, `'p''q' r`},
		// Comments collapse to a token separator.
		{"for (: note :) $x", "for $x"},
		{"(:a:)(:b:)1", "1"},
		// Anything we cannot scan confidently keeps its raw text:
		// possible constructors, the lt operator, unterminated tokens.
		{"<a>x  y</a>", "<a>x  y</a>"},
		{"a  <  b", "a  <  b"},
		{`"abc`, `"abc`},
		{"(: abc", "(: abc"},
	}
	for _, c := range cases {
		if got := normalizeQuery(c.in); got != c.want {
			t.Errorf("normalizeQuery(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if normalizeQuery("for  $x") != normalizeQuery("for $x") {
		t.Error("reformatted copies must normalize equal")
	}
	if normalizeQuery(`"a  b"`) == normalizeQuery(`"a b"`) {
		t.Error("literal whitespace must stay significant")
	}
	if normalizeQuery(`"x ""a  b"" y"`) == normalizeQuery(`"x ""a b"" y"`) {
		t.Error("whitespace after an escaped quote must stay significant")
	}
	if normalizeQuery("<a>x  y</a>") == normalizeQuery("<a>x y</a>") {
		t.Error("constructor content whitespace must stay significant")
	}
	if normalizeQuery("for (:c:) $x in /a return $x") != normalizeQuery("for $x in /a return $x") {
		t.Error("comments must be insignificant")
	}
}

// TestPreparedCacheBounded: at MaxPrepared entries the cache flushes, so
// unbounded distinct query texts cannot grow it, and evicted queries
// still answer correctly on re-prepare.
func TestPreparedCacheBounded(t *testing.T) {
	svc := New(xenc.NewStore(), Config{MaxPrepared: 4})
	ctx := context.Background()
	for i := 1; i <= 12; i++ {
		q := fmt.Sprintf("count((1 to %d))", i)
		resp, err := svc.Query(ctx, Request{Query: q})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if want := fmt.Sprintf("%d", i); resp.Result != want {
			t.Fatalf("%s = %q, want %q", q, resp.Result, want)
		}
	}
	svc.preparedMu.Lock()
	n := len(svc.prepared)
	svc.preparedMu.Unlock()
	if n > 4 {
		t.Errorf("prepared cache grew to %d entries, cap 4", n)
	}
	if g := svc.Stats().PreparedPlans; g > 4 {
		t.Errorf("PreparedPlans gauge = %d, want <= 4", g)
	}
	resp, err := svc.Query(ctx, Request{Query: "count((1 to 1))"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result != "1" {
		t.Fatalf("re-run after eviction = %q, want 1", resp.Result)
	}
}

// TestPreparedNoNegativeCache: compile failures occupy no cache slot, so
// a stream of distinct garbage cannot pin memory.
func TestPreparedNoNegativeCache(t *testing.T) {
	svc := New(xenc.NewStore(), Config{})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := svc.Query(ctx, Request{Query: fmt.Sprintf("for $x%d in", i)}); err == nil {
			t.Fatal("bad query succeeded")
		}
		svc.preparedMu.Lock()
		n := len(svc.prepared)
		svc.preparedMu.Unlock()
		if n != 0 {
			t.Fatalf("compile error left %d cache entries", n)
		}
	}
}
