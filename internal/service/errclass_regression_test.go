package service_test

// Regression tests for the two raw-error boundary leaks pfvet's errclass
// analyzer found: Collections forwarded the catalog's os error verbatim,
// and Drain returned a bare ctx.Err(). Both must come back as *Error so
// the HTTP layer maps them onto the documented status contract.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pathfinder/internal/engine"
	"pathfinder/internal/pfstore"
	"pathfinder/internal/service"
	"pathfinder/internal/xenc"
)

// TestCollectionsErrorClassified: a failing catalog list crosses the
// boundary as a classified exec error, not a raw *fs.PathError.
func TestCollectionsErrorClassified(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cat")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	cat, err := pfstore.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(xenc.NewStore(), service.Config{
		Engine:  engine.Config{Workers: 1},
		Catalog: cat,
	})
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	_, err = svc.Collections()
	if err == nil {
		t.Fatal("Collections over a removed catalog dir must fail")
	}
	var se *service.Error
	if !errors.As(err, &se) {
		t.Fatalf("Collections error is not a *service.Error: %T %v", err, err)
	}
	if se.Code != service.CodeExec {
		t.Errorf("Collections error code = %q, want %q", se.Code, service.CodeExec)
	}
}

// TestDrainTimeoutClassified: a drain that outlives its context reports a
// classified cancellation, and errors.Is still sees the cause.
func TestDrainTimeoutClassified(t *testing.T) {
	svc := newSvc(t, service.Config{Engine: engine.Config{Workers: 2}})
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := svc.Query(context.Background(), service.Request{Query: slowQuery, ContextDoc: "auction.xml"})
		done <- err
	}()
	<-started
	waitFor(t, "query admitted", func() bool { return svc.Stats().Admission.InFlight == 1 })

	svc.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	err := svc.Drain(ctx)
	cancel()
	if err == nil {
		t.Fatal("Drain must fail while a query is still in flight")
	}
	var se *service.Error
	if !errors.As(err, &se) {
		t.Fatalf("Drain error is not a *service.Error: %T %v", err, err)
	}
	if se.Code != service.CodeCanceled {
		t.Errorf("Drain error code = %q, want %q", se.Code, service.CodeCanceled)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Drain error must unwrap to the context cause, got %v", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := svc.Drain(ctx2); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight query during drain: %v", err)
	}
	waitIdle(t, svc)
}
