package service_test

// Service-path differential tier (the point of the service: every front
// door returns the same bytes as the embedded engine). XMark q01–q20 are
// checked against the pinned goldens under internal/engine/testdata, the
// Table 2 dialect corpus against a freshly evaluated embedded reference —
// each through the HTTP JSON endpoint, the HTTP text endpoint, and the
// TCP XQ command, at one worker and at eight, with the engine's runtime
// invariant checks enabled throughout.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathfinder/internal/core"
	"pathfinder/internal/corpus"
	"pathfinder/internal/engine"
	"pathfinder/internal/mil"
	"pathfinder/internal/opt"
	"pathfinder/internal/serialize"
	"pathfinder/internal/service"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

// goldenSF matches internal/engine's golden tier, so the goldens pin the
// service path too.
const goldenSF = 0.002

type harness struct {
	svc     *service.Service
	httpSrv *httptest.Server
	milSrv  *mil.Server
	tcpAddr string
}

func newHarness(t *testing.T, workers int, docs map[string]string) *harness {
	t.Helper()
	store := xenc.NewStore()
	for uri, doc := range docs {
		if _, err := store.LoadDocumentString(uri, doc); err != nil {
			t.Fatal(err)
		}
	}
	svc := service.New(store, service.Config{
		Engine: engine.Config{Workers: workers, Check: true},
	})
	hs := httptest.NewServer(svc.Handler())
	t.Cleanup(hs.Close)
	milSrv := svc.NewMILServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go milSrv.Serve(l) //nolint:errcheck — closed via t.Cleanup
	t.Cleanup(milSrv.Close)
	return &harness{svc: svc, httpSrv: hs, milSrv: milSrv, tcpAddr: l.Addr().String()}
}

// queryJSON drives POST /query; on 200 it returns the result field.
func (h *harness) queryJSON(t *testing.T, query, doc string) (int, string) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"query": query, "doc": doc})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(h.httpSrv.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, string(raw)
	}
	var out struct {
		Result string `json:"result"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad JSON response %q: %v", raw, err)
	}
	return resp.StatusCode, out.Result
}

// queryText drives POST /query/text.
func (h *harness) queryText(t *testing.T, query, doc string) (int, string) {
	t.Helper()
	url := h.httpSrv.URL + "/query/text"
	if doc != "" {
		url += "?doc=" + doc
	}
	resp, err := http.Post(url, "application/xquery", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

func (h *harness) dialTCP(t *testing.T) *mil.Client {
	t.Helper()
	c, err := mil.Dial(h.tcpAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// embedEval is the reference path: the exact compile → optimize → evaluate
// → serialize pipeline the embedded engine runs, no service in sight.
func embedEval(eng *engine.Engine, query, contextDoc string) (string, error) {
	plan, _, err := core.CompileQuery(query, xqcore.Options{ContextDoc: contextDoc})
	if err != nil {
		return "", err
	}
	if plan, err = opt.Optimize(plan); err != nil {
		return "", err
	}
	res, err := eng.EvalContext(context.Background(), plan)
	if err != nil {
		return "", err
	}
	return serialize.Result(eng.Store, res)
}

func refEngine(t *testing.T, workers int, docs map[string]string) *engine.Engine {
	t.Helper()
	store := xenc.NewStore()
	for uri, doc := range docs {
		if _, err := store.LoadDocumentString(uri, doc); err != nil {
			t.Fatal(err)
		}
	}
	return engine.NewWithConfig(store, engine.Config{Workers: workers, Check: true})
}

// TestServiceXMarkGolden: all twenty XMark queries through all three
// transports, byte-compared against the pinned goldens.
func TestServiceXMarkGolden(t *testing.T) {
	doc := xmark.GenerateString(goldenSF)
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			h := newHarness(t, workers, map[string]string{"xmark.xml": doc})
			tcp := h.dialTCP(t)
			for n := 1; n <= xmark.NumQueries; n++ {
				golden, err := os.ReadFile(filepath.Join("..", "engine", "testdata", "golden", fmt.Sprintf("q%02d.xml", n)))
				if err != nil {
					t.Fatalf("Q%d: %v", n, err)
				}
				want := strings.TrimSuffix(string(golden), "\n")

				if code, got := h.queryJSON(t, xmark.Query(n), "xmark.xml"); code != http.StatusOK || got != want {
					t.Errorf("Q%d http-json: status=%d\n got  = %.300q\n want = %.300q", n, code, got, want)
				}
				if code, got := h.queryText(t, xmark.Query(n), "xmark.xml"); code != http.StatusOK || got != want {
					t.Errorf("Q%d http-text: status=%d\n got  = %.300q\n want = %.300q", n, code, got, want)
				}
				if got, err := tcp.ExecXQ(xmark.Query(n), "xmark.xml"); err != nil || got != want {
					t.Errorf("Q%d tcp-xq: err=%v\n got  = %.300q\n want = %.300q", n, err, got, want)
				}
			}
		})
	}
}

// TestServiceDialectDifferential: the Table 2 corpus through all three
// transports against a freshly evaluated embedded reference.
func TestServiceDialectDifferential(t *testing.T) {
	docs := map[string]string{"auction.xml": corpus.AuctionDoc}
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ref := refEngine(t, workers, docs)
			h := newHarness(t, workers, docs)
			tcp := h.dialTCP(t)
			for i, q := range corpus.Dialect {
				want, wantErr := embedEval(ref, q, "auction.xml")
				if wantErr != nil {
					// The service must classify it as a compile failure too.
					if code, _ := h.queryJSON(t, q, "auction.xml"); code != http.StatusBadRequest {
						t.Errorf("dialect[%d] %q: embedded failed (%v) but http status=%d", i, q, wantErr, code)
					}
					if _, err := tcp.ExecXQ(q, "auction.xml"); err == nil {
						t.Errorf("dialect[%d] %q: embedded failed (%v) but TCP succeeded", i, q, wantErr)
					}
					continue
				}
				if code, got := h.queryJSON(t, q, "auction.xml"); code != http.StatusOK || got != want {
					t.Errorf("dialect[%d] %q http-json: status=%d\n got  = %.300q\n want = %.300q", i, q, code, got, want)
				}
				if code, got := h.queryText(t, q, "auction.xml"); code != http.StatusOK || got != want {
					t.Errorf("dialect[%d] %q http-text: status=%d\n got  = %.300q\n want = %.300q", i, q, code, got, want)
				}
				if got, err := tcp.ExecXQ(q, "auction.xml"); err != nil || got != want {
					t.Errorf("dialect[%d] %q tcp-xq: err=%v\n got  = %.300q\n want = %.300q", i, q, err, got, want)
				}
			}
		})
	}
}

// TestServiceMILDifferential: plans shipped over the wire (the MIL
// command, the paper's §4 setup) match the embedded engine through the
// service's admission path too.
func TestServiceMILDifferential(t *testing.T) {
	docs := map[string]string{"auction.xml": corpus.AuctionDoc}
	ref := refEngine(t, 8, docs)
	h := newHarness(t, 8, docs)
	tcp := h.dialTCP(t)
	for i, q := range corpus.Dialect {
		plan, _, err := core.CompileQuery(q, xqcore.Options{ContextDoc: "auction.xml"})
		if err != nil {
			continue
		}
		if plan, err = opt.Optimize(plan); err != nil {
			continue
		}
		program, err := mil.Emit(plan)
		if err != nil {
			continue
		}
		want, err := embedEval(ref, q, "auction.xml")
		if err != nil {
			continue
		}
		got, err := tcp.ExecMIL(program)
		if err != nil || got != want {
			t.Errorf("dialect[%d] %q tcp-mil: err=%v\n got  = %.300q\n want = %.300q", i, q, err, got, want)
		}
	}
}
