package service_test

// Collection-path tier: named collections persisted in a pfstore catalog
// served through every front door. The XMark goldens run against a
// collection that was persisted and reopened from disk (a second Catalog
// over the same directory, so the cached in-memory store cannot mask a
// format bug), and the /collections endpoints get a full lifecycle test.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"pathfinder/internal/engine"
	"pathfinder/internal/pfstore"
	"pathfinder/internal/service"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
)

// newCatalogHarness builds a service over an empty default store plus a
// catalog in dir, with both front doors listening.
func newCatalogHarness(t *testing.T, workers int, cat *pfstore.Catalog) *harness {
	t.Helper()
	svc := service.New(xenc.NewStore(), service.Config{
		Engine:  engine.Config{Workers: workers, Check: true},
		Catalog: cat,
	})
	hs := httptest.NewServer(svc.Handler())
	t.Cleanup(hs.Close)
	milSrv := svc.NewMILServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go milSrv.Serve(l) //nolint:errcheck — closed via t.Cleanup
	t.Cleanup(milSrv.Close)
	return &harness{svc: svc, httpSrv: hs, milSrv: milSrv, tcpAddr: l.Addr().String()}
}

// persistCollection shreds docs into a store and persists it as a named
// collection, returning a FRESH catalog over the directory so the serving
// process must reopen the file from disk rather than reuse the writer's
// cached store.
func persistCollection(t *testing.T, dir, name string, docs map[string]string) *pfstore.Catalog {
	t.Helper()
	writer, err := pfstore.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	store := xenc.NewStore()
	for uri, doc := range docs {
		if _, err := store.LoadDocumentString(uri, doc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := writer.Put(name, store); err != nil {
		t.Fatal(err)
	}
	reader, err := pfstore.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	return reader
}

// queryCollectionJSON drives POST /query with a collection binding.
func (h *harness) queryCollectionJSON(t *testing.T, query, collection string) (int, string) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"query": query, "collection": collection})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(h.httpSrv.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, string(raw)
	}
	var out struct {
		Result string `json:"result"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad JSON response %q: %v", raw, err)
	}
	return resp.StatusCode, out.Result
}

// TestServiceCollectionXMarkGolden: all twenty XMark queries over a
// persisted-and-reopened collection, through the HTTP JSON endpoint, the
// HTTP text endpoint, and the TCP XQ command, byte-compared to the
// pinned goldens. This is the reopen-without-re-shredding acceptance
// path: the serving process never saw the source XML.
func TestServiceCollectionXMarkGolden(t *testing.T) {
	cat := persistCollection(t, t.TempDir(), "xmark",
		map[string]string{"xmark.xml": xmark.GenerateString(goldenSF)})
	h := newCatalogHarness(t, 4, cat)
	tcp := h.dialTCP(t)

	for n := 1; n <= xmark.NumQueries; n++ {
		golden, err := os.ReadFile(filepath.Join("..", "engine", "testdata", "golden", fmt.Sprintf("q%02d.xml", n)))
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		want := strings.TrimSuffix(string(golden), "\n")

		if code, got := h.queryCollectionJSON(t, xmark.Query(n), "xmark"); code != http.StatusOK || got != want {
			t.Errorf("Q%d http-json: status=%d\n got  = %.300q\n want = %.300q", n, code, got, want)
		}
		url := h.httpSrv.URL + "/query/text?collection=xmark"
		resp, err := http.Post(url, "application/xquery", strings.NewReader(xmark.Query(n)))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(raw) != want {
			t.Errorf("Q%d http-text: status=%d\n got  = %.300q\n want = %.300q", n, resp.StatusCode, raw, want)
		}
		if got, err := tcp.ExecXQReq(engine.QueryRequest{Query: xmark.Query(n), Collection: "xmark"}); err != nil || got != want {
			t.Errorf("Q%d tcp-xq: err=%v\n got  = %.300q\n want = %.300q", n, err, got, want)
		}
	}
}

// TestCollectionsHTTPLifecycle: PUT creates and extends a collection,
// GET lists it, queries see each generation, DELETE removes it and
// subsequent queries 404.
func TestCollectionsHTTPLifecycle(t *testing.T) {
	cat, err := pfstore.OpenCatalog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h := newCatalogHarness(t, 2, cat)
	client := h.httpSrv.Client()

	do := func(method, path string, body string) (int, string) {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, h.httpSrv.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	// Create: first document.
	code, body := do(http.MethodPut, "/collections/crew?doc=a.xml", `<crew><member>Ada</member></crew>`)
	if code != http.StatusOK {
		t.Fatalf("PUT: status=%d body=%s", code, body)
	}
	var res struct {
		Name       string `json:"name"`
		Generation uint64 `json:"generation"`
		Documents  int    `json:"documents"`
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil || res.Generation != 1 || res.Documents != 1 {
		t.Fatalf("PUT result = %s (err %v), want gen 1, 1 doc", body, err)
	}

	// Extend: second document bumps the generation and fans out.
	if code, body = do(http.MethodPut, "/collections/crew?doc=b.xml", `<crew><member>Grace</member></crew>`); code != http.StatusOK {
		t.Fatalf("PUT second doc: status=%d body=%s", code, body)
	}
	if code, got := h.queryCollectionJSON(t, `count(collection("crew")//member)`, "crew"); code != http.StatusOK || got != "2" {
		t.Errorf("count over 2-doc collection: status=%d got=%q want 2", code, got)
	}
	// Absolute paths bind to the collection too.
	if code, got := h.queryCollectionJSON(t, `/crew/member/text()`, "crew"); code != http.StatusOK || got != "AdaGrace" {
		t.Errorf("absolute path over collection: status=%d got=%q", code, got)
	}

	// Replace a document in place: same URI, new content.
	if code, body = do(http.MethodPut, "/collections/crew?doc=a.xml", `<crew/>`); code != http.StatusOK {
		t.Fatalf("PUT replace: status=%d body=%s", code, body)
	}
	if code, got := h.queryCollectionJSON(t, `count(collection("crew")//member)`, "crew"); code != http.StatusOK || got != "1" {
		t.Errorf("count after replace: status=%d got=%q want 1", code, got)
	}

	// List.
	if code, body = do(http.MethodGet, "/collections", ""); code != http.StatusOK {
		t.Fatalf("GET /collections: status=%d", code)
	}
	var list struct {
		Collections []pfstore.CollectionInfo `json:"collections"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Collections) != 1 || list.Collections[0].Name != "crew" ||
		list.Collections[0].Generation != 3 || len(list.Collections[0].Documents) != 2 {
		t.Errorf("list = %+v, want crew gen 3 with 2 docs", list.Collections)
	}

	// Invalid names are rejected before touching the filesystem.
	if code, _ = do(http.MethodPut, "/collections/has%20space", `<x/>`); code != http.StatusBadRequest {
		t.Errorf("invalid name: status=%d, want 400", code)
	}

	// Delete, then queries and re-deletes 404.
	if code, _ = do(http.MethodDelete, "/collections/crew", ""); code != http.StatusOK {
		t.Fatalf("DELETE: status=%d", code)
	}
	if code, _ = do(http.MethodDelete, "/collections/crew", ""); code != http.StatusNotFound {
		t.Errorf("second DELETE: status=%d, want 404", code)
	}
	if code, _ := h.queryCollectionJSON(t, `1+1`, "crew"); code != http.StatusNotFound {
		t.Errorf("query on deleted collection: status=%d, want 404", code)
	}
}

// TestCollectionWithoutCatalog: collection operations on a service with
// no catalog are 501, and collection-bound queries 404.
func TestCollectionWithoutCatalog(t *testing.T) {
	h := newHarness(t, 1, map[string]string{})
	req, _ := http.NewRequest(http.MethodPut, h.httpSrv.URL+"/collections/x", strings.NewReader("<a/>"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("PUT without catalog: status=%d, want 501", resp.StatusCode)
	}
	if code, _ := h.queryCollectionJSON(t, `1`, "nope"); code != http.StatusNotFound {
		t.Errorf("collection query without catalog: status=%d, want 404", code)
	}
}

// TestDamagedCollectionIsServerError: a collection file that fails its
// header checks is a server-side fault (500), not a 404 — and because
// the catalog does not pin open failures, repairing the file lets the
// very next query succeed.
func TestDamagedCollectionIsServerError(t *testing.T) {
	dir := t.TempDir()
	cat, err := pfstore.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := newCatalogHarness(t, 1, cat)

	if err := os.WriteFile(filepath.Join(dir, "hurt.pfc"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, body := h.queryCollectionJSON(t, `1+1`, "hurt"); code != http.StatusInternalServerError {
		t.Errorf("damaged collection: status=%d body=%q, want 500", code, body)
	}
	if code, _ := h.queryCollectionJSON(t, `1+1`, "absent"); code != http.StatusNotFound {
		t.Errorf("absent collection: status=%d, want 404", code)
	}

	// Repair on disk; the failed open must not be cached.
	store := xenc.NewStore()
	if _, err := store.LoadDocumentString("d.xml", `<ok/>`); err != nil {
		t.Fatal(err)
	}
	writer, err := pfstore.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Put("hurt", store); err != nil {
		t.Fatal(err)
	}
	if code, got := h.queryCollectionJSON(t, `count(collection("hurt"))`, "hurt"); code != http.StatusOK || got != "1" {
		t.Errorf("after repair: status=%d got=%q, want 200/\"1\"", code, got)
	}
}

// TestPutDuringAttributeQueries: concurrent PutDocument on a collection
// while attribute-axis queries run against it — under -race this pins
// the clone path's no-reseal guarantee (adopting a live store's
// fragments must not rebuild their shared attribute offsets while
// in-flight queries read them).
func TestPutDuringAttributeQueries(t *testing.T) {
	dir := t.TempDir()
	cat, err := pfstore.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := newCatalogHarness(t, 2, cat)

	doc := `<people><person id="p0" age="30"/><person id="p1" age="40"/></people>`
	if _, err := h.svc.PutDocument("crowd", "seed.xml", strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			uri := fmt.Sprintf("extra%d.xml", i%4)
			if _, err := h.svc.PutDocument("crowd", uri, strings.NewReader(doc)); err != nil {
				done <- fmt.Errorf("put %s: %w", uri, err)
				return
			}
		}
	}()

	ctx := context.Background()
	for i := 0; i < 50; i++ {
		resp, err := h.svc.Query(ctx, service.Request{
			Query:      `count(collection("crowd")//person/@id)`,
			Collection: "crowd",
		})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if n, convErr := strconv.Atoi(resp.Result); convErr != nil || n < 2 || n%2 != 0 {
			t.Fatalf("query %d: result %q, want a positive even count", i, resp.Result)
		}
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
