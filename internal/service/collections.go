package service

import (
	"errors"
	"fmt"
	"io"

	"pathfinder/internal/engine"
	"pathfinder/internal/pfstore"
	"pathfinder/internal/xenc"
)

// Collection management: the service front door over the persistent
// catalog. Mutations follow a clone-modify-publish protocol — the current
// store snapshot is cloned (fragments shared, pools and registry copied),
// the clone takes the new document, and the catalog publishes it under a
// bumped generation. Queries already running keep their pinned snapshot;
// new requests see the new generation, and every prepared plan compiled
// against the collection is dropped (its lowered plan forgotten) so stale
// surrogate resolutions cannot be served.

// ErrNoCatalog reports a collection operation on a service configured
// without a persistent catalog.
var ErrNoCatalog = errors.New("no collection catalog configured (start with -store)")

// CollectionResult reports the outcome of a collection mutation.
type CollectionResult struct {
	Name       string `json:"name"`
	Generation uint64 `json:"generation"`
	Documents  int    `json:"documents"`
}

// PutDocument loads one XML document into the named collection, creating
// the collection if it does not exist and replacing the document if the
// name is already taken, then persists and publishes the new generation.
func (s *Service) PutDocument(name, docURI string, xml io.Reader) (*CollectionResult, error) {
	if s.cat == nil {
		return nil, ErrNoCatalog
	}
	if !pfstore.ValidName(name) {
		return nil, &Error{Code: CodeCompile, Err: fmt.Errorf("invalid collection name %q", name)}
	}
	if docURI == "" {
		return nil, &Error{Code: CodeCompile, Err: errors.New("missing document name")}
	}
	if !s.begin() {
		return nil, &Error{Code: CodeDraining, Err: errors.New("server is draining")}
	}
	defer s.inFlight.Done()

	s.catMu.Lock()
	defer s.catMu.Unlock()

	// Clone the current snapshot (or start fresh): fragments are immutable
	// and shared; pools and the document registry are copied, so in-flight
	// queries over the old generation never observe the mutation.
	var work *xenc.Store
	//pfvet:allow lockorder -- catMu serializes rare admin mutations end to end (read-clone-put must be atomic vs a concurrent Put/Delete); the query path never takes catMu
	if base, _, err := s.cat.Collection(name); err == nil {
		if work, err = xenc.NewStoreFromParts(base.Parts()); err != nil {
			return nil, &Error{Code: CodeExec, Err: fmt.Errorf("clone collection %q: %w", name, err)}
		}
	} else if errors.Is(err, pfstore.ErrNotFound) {
		work = xenc.NewStore()
	} else {
		return nil, &Error{Code: CodeExec, Err: err}
	}

	if _, err := work.ReplaceDocument(docURI, xml); err != nil {
		return nil, &Error{Code: CodeCompile, Err: err}
	}
	//pfvet:allow lockorder -- the persist-and-publish must stay inside the same catMu critical section as the clone; queries read published generations without catMu
	gen, err := s.cat.Put(name, work)
	if err != nil {
		return nil, &Error{Code: CodeExec, Err: err}
	}
	s.invalidateCollection(name)
	return &CollectionResult{Name: name, Generation: gen, Documents: len(work.DocURIs())}, nil
}

// DeleteCollection removes a named collection from the catalog and drops
// its prepared plans.
func (s *Service) DeleteCollection(name string) error {
	if s.cat == nil {
		return ErrNoCatalog
	}
	if !s.begin() {
		return &Error{Code: CodeDraining, Err: errors.New("server is draining")}
	}
	defer s.inFlight.Done()

	s.catMu.Lock()
	defer s.catMu.Unlock()
	//pfvet:allow lockorder -- delete must be atomic against a concurrent PutDocument clone of the same name; catMu is admin-only, never on the query path
	if err := s.cat.Delete(name); err != nil {
		if errors.Is(err, pfstore.ErrNotFound) {
			return &Error{Code: CodeNotFound, Err: err}
		}
		return &Error{Code: CodeExec, Err: err}
	}
	s.invalidateCollection(name)
	return nil
}

// Collections lists the catalog.
func (s *Service) Collections() ([]pfstore.CollectionInfo, error) {
	if s.cat == nil {
		return nil, ErrNoCatalog
	}
	infos, err := s.cat.List()
	if err != nil {
		return nil, &Error{Code: CodeExec, Stage: "catalog", Err: err}
	}
	return infos, nil
}

// Catalog exposes the backing catalog (nil when none is configured) for
// tools that preload collections before serving.
func (s *Service) Catalog() *pfstore.Catalog { return s.cat }

// invalidateCollection drops every settled prepared plan compiled against
// the named collection, any generation, releasing the engine's lowered
// plans. Entries still compiling are kept — same rationale as
// evictPreparedLocked: their plan is about to be handed to a caller.
func (s *Service) invalidateCollection(name string) {
	s.preparedMu.Lock()
	defer s.preparedMu.Unlock()
	for k, p := range s.prepared {
		if k.Collection != name || !p.done.Load() {
			continue
		}
		if p.plan != nil {
			s.eng.ForgetPlan(p.plan)
			s.preparedN.Add(-1)
		}
		delete(s.prepared, k)
	}
}

// preparedKeys snapshots the live cache keys (tests assert invalidation).
func (s *Service) preparedKeys() []engine.PlanKey {
	s.preparedMu.Lock()
	defer s.preparedMu.Unlock()
	out := make([]engine.PlanKey, 0, len(s.prepared))
	for k := range s.prepared {
		out = append(out, k)
	}
	return out
}
