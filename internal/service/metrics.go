package service

import (
	"sync/atomic"
	"time"
)

// classMetrics aggregates the outcomes of one admission class.
type classMetrics struct {
	completed   atomic.Int64
	rowsOut     atomic.Int64
	execNanos   atomic.Int64
	queueNanos  atomic.Int64
	maxExecNano atomic.Int64
}

func (c *classMetrics) observe(queueWait, exec time.Duration, rows int) {
	c.completed.Add(1)
	c.rowsOut.Add(int64(rows))
	c.execNanos.Add(int64(exec))
	c.queueNanos.Add(int64(queueWait))
	for {
		cur := c.maxExecNano.Load()
		if int64(exec) <= cur || c.maxExecNano.CompareAndSwap(cur, int64(exec)) {
			return
		}
	}
}

// ClassStats is the /stats rendering of one query class.
type ClassStats struct {
	Completed    int64   `json:"completed"`
	RowsOut      int64   `json:"rows_out"`
	AvgExecMs    float64 `json:"avg_exec_ms"`
	AvgQueueMs   float64 `json:"avg_queue_ms"`
	MaxExecMs    float64 `json:"max_exec_ms"`
	TotalExecSec float64 `json:"total_exec_sec"`
}

func (c *classMetrics) stats() ClassStats {
	n := c.completed.Load()
	s := ClassStats{
		Completed:    n,
		RowsOut:      c.rowsOut.Load(),
		MaxExecMs:    float64(c.maxExecNano.Load()) / 1e6,
		TotalExecSec: float64(c.execNanos.Load()) / 1e9,
	}
	if n > 0 {
		s.AvgExecMs = float64(c.execNanos.Load()) / float64(n) / 1e6
		s.AvgQueueMs = float64(c.queueNanos.Load()) / float64(n) / 1e6
	}
	return s
}

// metrics is the service-wide counter set backing /stats. Everything is
// atomic: the hot path never takes a lock for accounting.
type metrics struct {
	received      atomic.Int64
	completed     atomic.Int64
	compileErrors atomic.Int64
	execErrors    atomic.Int64
	rejected      atomic.Int64
	timeoutQueued atomic.Int64
	timeoutExec   atomic.Int64
	canceled      atomic.Int64
	drainRejected atomic.Int64
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64

	light classMetrics
	heavy classMetrics
}

// QueryStats is the /stats rendering of the service-wide counters.
type QueryStats struct {
	Received      int64 `json:"received"`
	Completed     int64 `json:"completed"`
	CompileErrors int64 `json:"compile_errors"`
	ExecErrors    int64 `json:"exec_errors"`
	Rejected      int64 `json:"rejected"`
	TimeoutQueued int64 `json:"timeout_queued"`
	TimeoutExec   int64 `json:"timeout_exec"`
	Canceled      int64 `json:"canceled"`
	DrainRejected int64 `json:"drain_rejected"`
	CacheHits     int64 `json:"plan_cache_hits"`
	CacheMisses   int64 `json:"plan_cache_misses"`
}

// Stats is the full service snapshot surfaced on /stats.
type Stats struct {
	Queries        QueryStats            `json:"queries"`
	Classes        map[string]ClassStats `json:"classes"`
	Admission      admissionState        `json:"admission"`
	PreparedPlans  int64                 `json:"prepared_plans"`
	ActiveSessions int                   `json:"active_sessions"`
	TotalSessions  int64                 `json:"total_sessions"`
	EngineQueries  int64                 `json:"engine_active_queries"`
	EngineWorkers  int                   `json:"engine_active_workers"`
	Draining       bool                  `json:"draining"`
}

func (m *metrics) queryStats() QueryStats {
	return QueryStats{
		Received:      m.received.Load(),
		Completed:     m.completed.Load(),
		CompileErrors: m.compileErrors.Load(),
		ExecErrors:    m.execErrors.Load(),
		Rejected:      m.rejected.Load(),
		TimeoutQueued: m.timeoutQueued.Load(),
		TimeoutExec:   m.timeoutExec.Load(),
		Canceled:      m.canceled.Load(),
		DrainRejected: m.drainRejected.Load(),
		CacheHits:     m.cacheHits.Load(),
		CacheMisses:   m.cacheMisses.Load(),
	}
}
