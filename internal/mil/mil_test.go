package mil

import (
	"fmt"
	"net"
	"strings"
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/serialize"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

func TestEmitParseRoundTripSimple(t *testing.T) {
	plan, _, err := core.CompileQuery(`for $v in (10,20) return $v + 100`, xqcore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Emit(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog, "return v") {
		t.Fatalf("program lacks return:\n%s", prog)
	}
	back, err := Parse(prog)
	if err != nil {
		t.Fatalf("parse emitted program: %v\n%s", err, prog)
	}
	// The round-tripped plan must evaluate identically.
	e1 := engine.New(xenc.NewStore())
	r1, err := e1.Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	e2 := engine.New(xenc.NewStore())
	r2, err := e2.Eval(back)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := serialize.Result(e1.Store, r1)
	s2, _ := serialize.Result(e2.Store, r2)
	if s1 != s2 || s1 != "110 120" {
		t.Errorf("round trip: %q vs %q", s1, s2)
	}
}

func TestItemLiteralsRoundTrip(t *testing.T) {
	items := bat.ItemVec{
		bat.Int(-5), bat.Float(2.5), bat.Str(`quo"te`), bat.Untyped("u v"),
		bat.Bool(true), bat.Bool(false), bat.Node(bat.NodeRef{Frag: 3, Pre: 7}),
	}
	tbl := bat.MustTable("iter", bat.Ramp(1, len(items)), "item", items)
	prog, err := Emit(algebra.Lit(tbl))
	if err != nil {
		t.Fatal(err)
	}
	prog += "" // Emit already appends return
	back, err := Parse(prog)
	if err != nil {
		t.Fatalf("%v in\n%s", err, prog)
	}
	got := back.Lit
	if got.Rows() != len(items) {
		t.Fatalf("rows = %d", got.Rows())
	}
	for i := range items {
		if !bat.DeepEqual(got.MustCol("item").ItemAt(i), items[i]) {
			t.Errorf("item %d: %v != %v", i, got.MustCol("item").ItemAt(i), items[i])
		}
	}
}

// TestXMarkThroughMIL emits, parses, and executes every XMark query via
// the MIL path and compares against direct plan evaluation.
func TestXMarkThroughMIL(t *testing.T) {
	doc := xmark.GenerateString(0.002)
	opt := xqcore.Options{ContextDoc: "xmark.xml"}
	for n := 1; n <= xmark.NumQueries; n++ {
		plan, _, err := core.CompileQuery(xmark.Query(n), opt)
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		// Direct evaluation.
		e1 := engine.New(xenc.NewStore())
		if _, err := e1.Store.LoadDocumentString("xmark.xml", doc); err != nil {
			t.Fatal(err)
		}
		r1, err := e1.Eval(plan)
		if err != nil {
			t.Fatalf("Q%d direct: %v", n, err)
		}
		want, _ := serialize.Result(e1.Store, r1)

		// Via MIL text.
		prog, err := Emit(plan)
		if err != nil {
			t.Fatalf("Q%d emit: %v", n, err)
		}
		srv := NewServer()
		if _, err := srv.Engine().Store.LoadDocumentString("xmark.xml", doc); err != nil {
			t.Fatal(err)
		}
		got, err := srv.Exec(prog)
		if err != nil {
			t.Fatalf("Q%d MIL exec: %v", n, err)
		}
		if got != want {
			a, b := got, want
			if len(a) > 200 {
				a = a[:200]
			}
			if len(b) > 200 {
				b = b[:200]
			}
			t.Errorf("Q%d differs via MIL:\n mil    = %q\n direct = %q", n, a, b)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, prog := range []string{
		"",                             // no return
		"v0 := bogus(v1);\nreturn v0;", // unknown instruction
		"return v9;",                   // undefined var
		"v0 := table(x:int[i1]);\nv0 := table(x:int[i2]);\nreturn v0;", // reassign
		"v0 := select(v1, c);\nreturn v0;",                             // undefined operand
		"v0 := table(x:wat[i1]);\nreturn v0;",                          // bad type
		"v0 := table(x:int[zz]);\nreturn v0;",                          // bad literal
		"v0",                                                           // malformed
	} {
		if _, err := Parse(prog); err == nil {
			t.Errorf("program %q must fail", prog)
		}
	}
}

func TestServerProtocol(t *testing.T) {
	srv := NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l) //nolint:errcheck — returns when the listener closes

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Load("tiny.xml", `<a><b>x</b></a>`); err != nil {
		t.Fatalf("LOAD: %v", err)
	}
	if err := c.Load("tiny.xml", `<a/>`); err == nil {
		t.Error("duplicate LOAD must fail")
	}
	if _, err := c.Gen("xmark.xml", 0.001); err != nil {
		t.Fatalf("GEN: %v", err)
	}

	plan, _, err := core.CompileQuery(`count(doc("xmark.xml")//person)`, xqcore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Emit(plan)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.ExecMIL(prog)
	if err != nil {
		t.Fatalf("MIL: %v", err)
	}
	if out != "60" { // the people floor at tiny scale factors
		t.Errorf("count(//person) over generated doc = %q", out)
	}

	storage, err := c.Storage()
	if err != nil || !strings.Contains(storage, "nodes=") {
		t.Errorf("STORAGE: %q, %v", storage, err)
	}

	if _, err := c.ExecMIL("garbage"); err == nil {
		t.Error("bad MIL must yield ERR")
	}
}

// TestServerRejectsOversizedPayload: a declared byte count above the
// payload limit is refused before any allocation — one line must not be
// able to force a multi-GB make([]byte, n) — and the connection closes,
// since the unread payload leaves the framing unrecoverable.
func TestServerRejectsOversizedPayload(t *testing.T) {
	srv := NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l) //nolint:errcheck — returns when the listener closes

	for _, line := range []string{"MIL 9999999999\n", "XQ 2097152 d\n", "LOAD u 999999999999\n"} {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c := NewClient(conn)
		if _, err := c.roundTrip(line, nil); err == nil ||
			!strings.Contains(err.Error(), "exceeds limit") {
			t.Errorf("%q: want payload-limit ERR, got %v", strings.TrimSpace(line), err)
		}
		// The server closed the broken connection; the next read sees EOF.
		if _, err := c.roundTrip("STORAGE\n", nil); err == nil {
			t.Errorf("%q: connection stayed open after framing break", strings.TrimSpace(line))
		}
		conn.Close()
	}

	// In-limit payloads on a fresh connection still work.
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Load("ok.xml", "<a/>"); err != nil {
		t.Fatalf("in-limit LOAD after rejections: %v", err)
	}
}

// TestServerConcurrentClients hammers one server from several goroutines:
// the store mutex must keep concurrent MIL executions (which construct
// fragments) consistent.
func TestServerConcurrentClients(t *testing.T) {
	srv := NewServer()
	if _, err := srv.Engine().Store.LoadDocumentString("xmark.xml",
		xmark.GenerateString(0.001)); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l) //nolint:errcheck — returns when the listener closes

	plan, _, err := core.CompileQuery(
		`<r>{count(doc("xmark.xml")//person)}</r>`, xqcore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Emit(plan)
	if err != nil {
		t.Fatal(err)
	}
	const workers, rounds = 8, 10
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			c, err := Dial(l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < rounds; i++ {
				out, err := c.ExecMIL(prog)
				if err != nil {
					errs <- err
					return
				}
				if out != "<r>60</r>" {
					errs <- fmt.Errorf("got %q", out)
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSplitArgsEdgeCases(t *testing.T) {
	args, err := splitArgs(`v1, res, add, (item, item1)`)
	if err != nil || len(args) != 4 || args[3] != "(item, item1)" {
		t.Errorf("splitArgs: %v %v", args, err)
	}
	args2, err := splitArgs(`x:str[s"a, b" s"c"]`)
	if err != nil || len(args2) != 1 {
		t.Errorf("quoted comma: %v %v", args2, err)
	}
	if _, err := splitArgs(`(unbalanced`); err == nil {
		t.Error("unbalanced must fail")
	}
	if _, err := splitArgs(`"unterminated`); err == nil {
		t.Error("unterminated string must fail")
	}
}

// TestClientRejectsUnwireableNames: names that cannot travel in the
// space-delimited command header — whitespace shifts the fields, and a
// literal "-" collides with the no-context-doc placeholder the server
// drops — are rejected client-side before anything hits the wire. The
// client's peer is closed, so a bypassed check errors instead of hanging.
func TestClientRejectsUnwireableNames(t *testing.T) {
	ours, theirs := net.Pipe()
	theirs.Close()
	c := NewClient(ours)

	bad := []engine.QueryRequest{
		{Query: "1", ContextDoc: "-", Collection: "x"},
		{Query: "1", ContextDoc: "a b"},
		{Query: "1", ContextDoc: "a\tb", Collection: "x"},
		{Query: "1", Collection: "x y"},
		{Query: "1", Collection: "-"},
	}
	for _, req := range bad {
		if _, err := c.ExecXQReq(req); err == nil || !strings.Contains(err.Error(), "not representable") {
			t.Errorf("ExecXQReq(doc=%q coll=%q) err = %v, want wire-name rejection", req.ContextDoc, req.Collection, err)
		}
	}
	if err := c.Load("a b.xml", "<x/>"); err == nil || !strings.Contains(err.Error(), "not representable") {
		t.Errorf("Load with spaced uri err = %v, want wire-name rejection", err)
	}
	if _, err := c.Gen("-", 0.1); err == nil || !strings.Contains(err.Error(), "not representable") {
		t.Errorf("Gen with placeholder uri err = %v, want wire-name rejection", err)
	}
}
