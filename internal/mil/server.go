package mil

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"pathfinder/internal/algebra"
	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/opt"
	"pathfinder/internal/serialize"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

// Server is the back-end half of the demonstration setup (§4): it owns a
// document store and executes programs shipped by front-end clients.
// The wire protocol is line-framed:
//
//	LOAD <uri> <nbytes>\n<xml>     load a document
//	GEN <uri> <sf>\n               generate an XMark instance server-side
//	MIL <nbytes>\n<program>        execute, respond with the serialized result
//	XQ <nbytes> [doc [coll]]\n<query>
//	                               compile and execute an XQuery server-side,
//	                               optionally binding absolute paths to doc
//	                               and the evaluation to named collection
//	                               coll ("-" for doc means no binding)
//	STORAGE\n                      storage report (§3.1 numbers)
//	QUIT\n                         close the connection
//
// Responses are "OK <nbytes>\n<payload>" or "ERR <nbytes>\n<message>".
//
// Each connection is a session: commands on one connection run serially
// (the protocol is request/response), but connections run concurrently
// against the shared engine — store mutations take the server mutex,
// query evaluation does not. A connection that drops mid-query cancels
// that query's context, so its scheduler workers are released promptly.
type Server struct {
	mu  sync.Mutex // serializes store mutations (LOAD/GEN)
	eng *engine.Engine

	// Hooks, when set, lets an embedding layer (internal/service) open an
	// accounting session per connection and route execution through its
	// admission control. Nil means direct engine execution.
	Hooks ConnHooks

	// LegacyOptimizer makes the direct XQ path use the single-shot
	// peephole optimizer instead of the staged pipeline — set by the
	// service layer when pfserver runs with -no-opt-pipeline. (Sessioned
	// connections optimize inside the service and ignore this.)
	LegacyOptimizer bool

	// progCache reuses parsed MIL plans across requests keyed by program
	// text, so a client (or a thousand clients) re-shipping the same
	// program hits the engine's physical-plan cache instead of growing it
	// with one entry per request. Bounded; eviction forgets the engine's
	// lowered plan too.
	progMu    sync.Mutex
	progCache map[string]*algebra.Op

	lnMu      sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[io.Closer]struct{}
	closed    bool
}

// progCacheCap bounds the MIL program cache. When full the whole cache is
// dropped (the workload that overflows it has no reuse to lose).
const progCacheCap = 256

// maxCmdBytes bounds MIL/XQ payloads (mirroring the HTTP front door's
// 1MiB body cap); maxLoadBytes bounds LOAD documents, which are
// legitimately much larger. Declared counts above the limit are rejected
// before allocating, so one unauthenticated "MIL 9999999999" line cannot
// force a multi-GB allocation.
const (
	maxCmdBytes  = 1 << 20
	maxLoadBytes = 256 << 20
)

// ConnHooks customizes per-connection behavior.
type ConnHooks interface {
	// ConnOpened is called once per connection; the returned session
	// executes that connection's queries and is closed with it.
	ConnOpened() ConnSession
}

// ConnSession is one connection's execution scope.
type ConnSession interface {
	// ExecQuery compiles and runs an XQuery (the XQ command).
	ExecQuery(ctx context.Context, req engine.QueryRequest) (string, error)
	// ExecPlan runs an already-parsed MIL plan (the MIL command).
	ExecPlan(ctx context.Context, plan *algebra.Op) (string, error)
	Close()
}

// NewServer returns a server with an empty store.
func NewServer() *Server {
	return NewServerWith(engine.New(xenc.NewStore()))
}

// NewServerWith returns a server over an existing engine — the service
// layer shares one engine between the HTTP and TCP front doors.
func NewServerWith(eng *engine.Engine) *Server {
	return &Server{
		eng:       eng,
		progCache: map[string]*algebra.Op{},
		listeners: map[net.Listener]struct{}{},
		conns:     map[io.Closer]struct{}{},
	}
}

// Engine exposes the underlying engine (for embedding the server in
// tests and tools).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Serve accepts connections until the listener closes (or Close is
// called, which returns nil).
func (s *Server) Serve(l net.Listener) error {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		l.Close()
		return net.ErrClosed
	}
	s.listeners[l] = struct{}{}
	s.lnMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.lnMu.Lock()
			delete(s.listeners, l)
			closed := s.closed
			s.lnMu.Unlock()
			if closed && errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.lnMu.Lock()
		if s.closed {
			s.lnMu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.lnMu.Unlock()
		go func() {
			defer func() {
				conn.Close()
				s.lnMu.Lock()
				delete(s.conns, conn)
				s.lnMu.Unlock()
			}()
			s.ServeConn(conn)
		}()
	}
}

// Close stops accepting and closes every listener and open connection.
// In-flight commands observe their connection close as a context
// cancellation.
func (s *Server) Close() {
	s.lnMu.Lock()
	s.closed = true
	for l := range s.listeners {
		//pfvet:allow lockorder -- shutdown-only: lnMu must cover closed=true plus the close sweep so a racing accept cannot register a new conn after the sweep; Close on a TCP listener does not block
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.lnMu.Unlock()
}

// command is one parsed protocol command, payload included.
type command struct {
	fields []string
	body   []byte
	err    string // framing error to report instead of executing
}

// ServeConn handles one client connection. A dedicated goroutine owns
// all reads and feeds parsed commands to the handler; when the client
// disconnects (EOF or read error) it cancels the connection context, so
// a query still executing is aborted mid-operator instead of running to
// completion for nobody.
func (s *Server) ServeConn(rw io.ReadWriter) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sess ConnSession
	if s.Hooks != nil {
		sess = s.Hooks.ConnOpened()
		defer sess.Close()
	}
	r := bufio.NewReader(rw)
	w := bufio.NewWriter(rw)
	defer w.Flush()

	cmds := make(chan command)
	go func() {
		defer close(cmds)
		for {
			cmd, last := readCommand(r)
			if cmd == nil {
				cancel() // disconnect: abort any in-flight execution
				return
			}
			select {
			case cmds <- *cmd:
			case <-ctx.Done():
				return
			}
			if last {
				return
			}
		}
	}()

	for cmd := range cmds {
		if cmd.err != "" {
			reply(w, "ERR", cmd.err)
			continue
		}
		if cmd.fields[0] == "QUIT" {
			return
		}
		s.handle(ctx, w, sess, cmd)
	}
}

// readCommand reads one command and its payload. It returns nil when the
// stream ends, and last=true after a command that ends the conversation
// (QUIT) or breaks framing beyond recovery.
func readCommand(r *bufio.Reader) (*command, bool) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, true
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		return &command{err: "empty command"}, false
	}
	cmd := &command{fields: fields}
	// Payload-carrying commands: the byte count's position varies.
	countAt := -1
	switch fields[0] {
	case "QUIT":
		return cmd, true
	case "LOAD":
		if len(fields) != 3 {
			cmd.err = "usage: LOAD <uri> <nbytes>"
			return cmd, false
		}
		countAt = 2
	case "MIL":
		if len(fields) != 2 {
			cmd.err = "usage: MIL <nbytes>"
			return cmd, false
		}
		countAt = 1
	case "XQ":
		if len(fields) < 2 || len(fields) > 4 {
			cmd.err = "usage: XQ <nbytes> [doc [collection]]"
			return cmd, false
		}
		countAt = 1
	}
	if countAt >= 0 {
		n, err := strconv.Atoi(fields[countAt])
		if err != nil || n < 0 {
			cmd.err = "bad byte count"
			return cmd, false
		}
		limit := maxCmdBytes
		if fields[0] == "LOAD" {
			limit = maxLoadBytes
		}
		if n > limit {
			// The payload cannot be skipped without reading it, so the
			// frame is unrecoverable: report the error and close.
			cmd.err = fmt.Sprintf("payload of %d bytes exceeds limit of %d", n, limit)
			return cmd, true
		}
		cmd.body = make([]byte, n)
		if _, err := io.ReadFull(r, cmd.body); err != nil {
			cmd.err = "short read: " + err.Error()
			return cmd, true // framing is broken; stop reading
		}
	}
	return cmd, false
}

// handle executes one well-formed command and writes the response.
func (s *Server) handle(ctx context.Context, w *bufio.Writer, sess ConnSession, cmd command) {
	fields := cmd.fields
	switch fields[0] {
	case "LOAD":
		s.mu.Lock()
		_, err := s.eng.Store.LoadDocument(fields[1], strings.NewReader(string(cmd.body)))
		s.mu.Unlock()
		if err != nil {
			reply(w, "ERR", err.Error())
			return
		}
		reply(w, "OK", "")
	case "GEN":
		if len(fields) != 3 {
			reply(w, "ERR", "usage: GEN <uri> <sf>")
			return
		}
		sf, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || sf <= 0 {
			reply(w, "ERR", "bad scale factor")
			return
		}
		doc := xmark.GenerateString(sf)
		s.mu.Lock()
		_, err = s.eng.Store.LoadDocument(fields[1], strings.NewReader(doc))
		s.mu.Unlock()
		if err != nil {
			reply(w, "ERR", err.Error())
			return
		}
		reply(w, "OK", fmt.Sprintf("generated %d bytes", len(doc)))
	case "MIL":
		out, err := s.ExecContext(ctx, sess, string(cmd.body))
		if err != nil {
			reply(w, "ERR", err.Error())
			return
		}
		reply(w, "OK", out)
	case "XQ":
		req := engine.QueryRequest{Query: string(cmd.body)}
		if len(fields) >= 3 && fields[2] != "-" {
			req.ContextDoc = fields[2]
		}
		if len(fields) == 4 {
			req.Collection = fields[3]
		}
		out, err := s.execQuery(ctx, sess, req)
		if err != nil {
			reply(w, "ERR", err.Error())
			return
		}
		reply(w, "OK", out)
	case "STORAGE":
		s.mu.Lock()
		rep := s.eng.Store.Report()
		s.mu.Unlock()
		reply(w, "OK", fmt.Sprintf("nodes=%d attrs=%d structural=%d pools=%d total=%d",
			rep.Nodes, rep.Attrs, rep.StructuralBytes,
			rep.TagPoolBytes+rep.TextPoolBytes+rep.AttrPoolBytes, rep.Total()))
	default:
		reply(w, "ERR", "unknown command "+fields[0])
	}
}

// parseCached parses a MIL program, reusing the plan of a previously
// shipped identical program so repeated prepared statements share one
// plan root (and therefore one lowered physical plan in the engine).
func (s *Server) parseCached(program string) (*algebra.Op, error) {
	s.progMu.Lock()
	if plan, ok := s.progCache[program]; ok {
		s.progMu.Unlock()
		return plan, nil
	}
	s.progMu.Unlock()
	plan, err := Parse(program)
	if err != nil {
		return nil, err
	}
	s.progMu.Lock()
	defer s.progMu.Unlock()
	if existing, ok := s.progCache[program]; ok {
		// A concurrent first request for the same program won the store.
		// Reuse its plan and drop ours — it was never lowered, so nothing
		// tracks it — keeping exactly one root per cached program that
		// eviction's ForgetPlan can account for.
		return existing, nil
	}
	if len(s.progCache) >= progCacheCap {
		for text, old := range s.progCache {
			s.eng.ForgetPlan(old)
			delete(s.progCache, text)
		}
	}
	s.progCache[program] = plan
	return plan, nil
}

// Exec parses and runs a MIL program against the server's store, returning
// the serialized result.
func (s *Server) Exec(program string) (string, error) {
	return s.ExecContext(context.Background(), nil, program)
}

// ExecContext is Exec under a context, routed through the session's
// admission path when one is attached.
func (s *Server) ExecContext(ctx context.Context, sess ConnSession, program string) (string, error) {
	plan, err := s.parseCached(program)
	if err != nil {
		return "", err
	}
	if sess != nil {
		return sess.ExecPlan(ctx, plan)
	}
	res, err := s.eng.EvalContext(ctx, plan)
	if err != nil {
		return "", err
	}
	return serialize.Result(s.eng.Store, res)
}

// execQuery compiles and runs an XQuery server-side (the XQ command):
// through the session when attached, otherwise compile → optimize →
// evaluate directly against the request's collection binding.
func (s *Server) execQuery(ctx context.Context, sess ConnSession, req engine.QueryRequest) (string, error) {
	if sess != nil {
		return sess.ExecQuery(ctx, req)
	}
	eng, _, err := s.eng.ForCollection(req.Collection)
	if err != nil {
		return "", err
	}
	plan, _, err := core.CompileQuery(req.Query, xqcore.Options{ContextDoc: req.ContextDoc, Collection: req.Collection})
	if err != nil {
		return "", err
	}
	if s.LegacyOptimizer {
		plan, err = opt.Peephole(plan)
	} else {
		plan, err = opt.Optimize(plan)
	}
	if err != nil {
		return "", err
	}
	res, err := eng.EvalContext(ctx, plan)
	if err != nil {
		return "", err
	}
	return serialize.Result(eng.Store, res)
}

func reply(w *bufio.Writer, status, payload string) {
	fmt.Fprintf(w, "%s %d\n%s", status, len(payload), payload)
	w.Flush()
}

// Client is the front-end side of the protocol.
type Client struct {
	conn io.ReadWriteCloser
	r    *bufio.Reader
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an existing connection.
func NewClient(conn io.ReadWriteCloser) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn)}
}

// Close closes the connection after a polite QUIT.
func (c *Client) Close() error {
	fmt.Fprintf(c.conn, "QUIT\n")
	return c.conn.Close()
}

func (c *Client) roundTrip(header string, body []byte) (string, error) {
	if _, err := io.WriteString(c.conn, header); err != nil {
		return "", err
	}
	if len(body) > 0 {
		if _, err := c.conn.Write(body); err != nil {
			return "", err
		}
	}
	status, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	fields := strings.Fields(strings.TrimSpace(status))
	if len(fields) != 2 {
		return "", fmt.Errorf("malformed response %q", status)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 {
		return "", fmt.Errorf("malformed response length %q", status)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return "", err
	}
	if fields[0] == "ERR" {
		return "", fmt.Errorf("server: %s", buf)
	}
	return string(buf), nil
}

// Load ships a document to the server.
func (c *Client) Load(uri, xml string) error {
	if !validWireName(uri) {
		return fmt.Errorf("mil: document uri %q is not representable in the wire header", uri)
	}
	_, err := c.roundTrip(fmt.Sprintf("LOAD %s %d\n", uri, len(xml)), []byte(xml))
	return err
}

// Gen asks the server to generate and load an XMark instance.
func (c *Client) Gen(uri string, sf float64) (string, error) {
	if !validWireName(uri) {
		return "", fmt.Errorf("mil: document uri %q is not representable in the wire header", uri)
	}
	return c.roundTrip(fmt.Sprintf("GEN %s %g\n", uri, sf), nil)
}

// ExecMIL ships a MIL program and returns the serialized result.
func (c *Client) ExecMIL(program string) (string, error) {
	return c.roundTrip(fmt.Sprintf("MIL %d\n", len(program)), []byte(program))
}

// validWireName reports whether a name can travel in the space-delimited
// command header: whitespace would shift the remaining fields, and a
// literal "-" would collide with the no-context-doc placeholder and be
// silently dropped by the server.
func validWireName(name string) bool {
	if name == "-" {
		return false
	}
	return !strings.ContainsAny(name, " \t\r\n\v\f")
}

// ExecXQReq ships an XQuery for server-side compilation and execution
// with its full request binding: the context document for absolute paths
// and the named collection to evaluate against.
func (c *Client) ExecXQReq(req engine.QueryRequest) (string, error) {
	if req.ContextDoc != "" && !validWireName(req.ContextDoc) {
		return "", fmt.Errorf("mil: context doc %q is not representable in the wire header", req.ContextDoc)
	}
	if req.Collection != "" && !validWireName(req.Collection) {
		return "", fmt.Errorf("mil: collection %q is not representable in the wire header", req.Collection)
	}
	header := fmt.Sprintf("XQ %d\n", len(req.Query))
	switch {
	case req.Collection != "":
		doc := req.ContextDoc
		if doc == "" {
			doc = "-" // placeholder: collection without a context doc
		}
		header = fmt.Sprintf("XQ %d %s %s\n", len(req.Query), doc, req.Collection)
	case req.ContextDoc != "":
		header = fmt.Sprintf("XQ %d %s\n", len(req.Query), req.ContextDoc)
	}
	return c.roundTrip(header, []byte(req.Query))
}

// ExecXQ ships an XQuery, optionally binding absolute paths to contextDoc.
//
// Deprecated: use ExecXQReq, which also carries the collection binding.
func (c *Client) ExecXQ(src, contextDoc string) (string, error) {
	return c.ExecXQReq(engine.QueryRequest{Query: src, ContextDoc: contextDoc})
}

// Storage fetches the server's storage report.
func (c *Client) Storage() (string, error) {
	return c.roundTrip("STORAGE\n", nil)
}
