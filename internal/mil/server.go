package mil

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"pathfinder/internal/engine"
	"pathfinder/internal/serialize"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
)

// Server is the back-end half of the demonstration setup (§4): it owns a
// document store and executes MIL programs shipped by front-end clients.
// The wire protocol is line-framed:
//
//	LOAD <uri> <nbytes>\n<xml>     load a document
//	GEN <uri> <sf>\n               generate an XMark instance server-side
//	MIL <nbytes>\n<program>        execute, respond with the serialized result
//	STORAGE\n                      storage report (§3.1 numbers)
//	QUIT\n                         close the connection
//
// Responses are "OK <nbytes>\n<payload>" or "ERR <nbytes>\n<message>".
type Server struct {
	mu  sync.Mutex
	eng *engine.Engine
}

// NewServer returns a server with an empty store.
func NewServer() *Server {
	return &Server{eng: engine.New(xenc.NewStore())}
}

// Engine exposes the underlying engine (for embedding the server in
// tests and tools).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			s.ServeConn(conn)
		}()
	}
}

// ServeConn handles one client connection.
func (s *Server) ServeConn(rw io.ReadWriter) {
	r := bufio.NewReader(rw)
	w := bufio.NewWriter(rw)
	defer w.Flush()
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "QUIT":
			return
		case "LOAD":
			if len(fields) != 3 {
				reply(w, "ERR", "usage: LOAD <uri> <nbytes>")
				continue
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				reply(w, "ERR", "bad byte count")
				continue
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(r, buf); err != nil {
				reply(w, "ERR", "short read: "+err.Error())
				continue
			}
			s.mu.Lock()
			_, err = s.eng.Store.LoadDocument(fields[1], strings.NewReader(string(buf)))
			s.mu.Unlock()
			if err != nil {
				reply(w, "ERR", err.Error())
				continue
			}
			reply(w, "OK", "")
		case "GEN":
			if len(fields) != 3 {
				reply(w, "ERR", "usage: GEN <uri> <sf>")
				continue
			}
			sf, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || sf <= 0 {
				reply(w, "ERR", "bad scale factor")
				continue
			}
			doc := xmark.GenerateString(sf)
			s.mu.Lock()
			_, err = s.eng.Store.LoadDocument(fields[1], strings.NewReader(doc))
			s.mu.Unlock()
			if err != nil {
				reply(w, "ERR", err.Error())
				continue
			}
			reply(w, "OK", fmt.Sprintf("generated %d bytes", len(doc)))
		case "MIL":
			if len(fields) != 2 {
				reply(w, "ERR", "usage: MIL <nbytes>")
				continue
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				reply(w, "ERR", "bad byte count")
				continue
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(r, buf); err != nil {
				reply(w, "ERR", "short read: "+err.Error())
				continue
			}
			out, err := s.Exec(string(buf))
			if err != nil {
				reply(w, "ERR", err.Error())
				continue
			}
			reply(w, "OK", out)
		case "STORAGE":
			s.mu.Lock()
			rep := s.eng.Store.Report()
			s.mu.Unlock()
			reply(w, "OK", fmt.Sprintf("nodes=%d attrs=%d structural=%d pools=%d total=%d",
				rep.Nodes, rep.Attrs, rep.StructuralBytes,
				rep.TagPoolBytes+rep.TextPoolBytes+rep.AttrPoolBytes, rep.Total()))
		default:
			reply(w, "ERR", "unknown command "+fields[0])
		}
	}
}

// Exec parses and runs a MIL program against the server's store, returning
// the serialized result.
func (s *Server) Exec(program string) (string, error) {
	plan, err := Parse(program)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := s.eng.Eval(plan)
	if err != nil {
		return "", err
	}
	return serialize.Result(s.eng.Store, res)
}

func reply(w *bufio.Writer, status, payload string) {
	fmt.Fprintf(w, "%s %d\n%s", status, len(payload), payload)
	w.Flush()
}

// Client is the front-end side of the protocol.
type Client struct {
	conn io.ReadWriteCloser
	r    *bufio.Reader
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an existing connection.
func NewClient(conn io.ReadWriteCloser) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn)}
}

// Close closes the connection after a polite QUIT.
func (c *Client) Close() error {
	fmt.Fprintf(c.conn, "QUIT\n")
	return c.conn.Close()
}

func (c *Client) roundTrip(header string, body []byte) (string, error) {
	if _, err := io.WriteString(c.conn, header); err != nil {
		return "", err
	}
	if len(body) > 0 {
		if _, err := c.conn.Write(body); err != nil {
			return "", err
		}
	}
	status, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	fields := strings.Fields(strings.TrimSpace(status))
	if len(fields) != 2 {
		return "", fmt.Errorf("malformed response %q", status)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 {
		return "", fmt.Errorf("malformed response length %q", status)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return "", err
	}
	if fields[0] == "ERR" {
		return "", fmt.Errorf("server: %s", buf)
	}
	return string(buf), nil
}

// Load ships a document to the server.
func (c *Client) Load(uri, xml string) error {
	_, err := c.roundTrip(fmt.Sprintf("LOAD %s %d\n", uri, len(xml)), []byte(xml))
	return err
}

// Gen asks the server to generate and load an XMark instance.
func (c *Client) Gen(uri string, sf float64) (string, error) {
	return c.roundTrip(fmt.Sprintf("GEN %s %g\n", uri, sf), nil)
}

// ExecMIL ships a MIL program and returns the serialized result.
func (c *Client) ExecMIL(program string) (string, error) {
	return c.roundTrip(fmt.Sprintf("MIL %d\n", len(program)), []byte(program))
}

// Storage fetches the server's storage report.
func (c *Client) Storage() (string, error) {
	return c.roundTrip("STORAGE\n", nil)
}
