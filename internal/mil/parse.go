package mil

import (
	"fmt"
	"strconv"
	"strings"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
)

// Parse reads a MIL program back into an algebra plan — the server side of
// the protocol.
func Parse(program string) (*algebra.Op, error) {
	vars := make(map[string]*algebra.Op)
	for lineNo, raw := range strings.Split(program, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		line = strings.TrimSuffix(line, ";")
		if rest, ok := strings.CutPrefix(line, "return "); ok {
			op, found := vars[strings.TrimSpace(rest)]
			if !found {
				return nil, fmt.Errorf("mil line %d: return of undefined %q", lineNo+1, rest)
			}
			return op, nil
		}
		name, rhs, ok := strings.Cut(line, ":=")
		if !ok {
			return nil, fmt.Errorf("mil line %d: expected assignment", lineNo+1)
		}
		name = strings.TrimSpace(name)
		op, err := parseRHS(strings.TrimSpace(rhs), vars)
		if err != nil {
			return nil, fmt.Errorf("mil line %d: %w", lineNo+1, err)
		}
		if _, dup := vars[name]; dup {
			return nil, fmt.Errorf("mil line %d: %s assigned twice", lineNo+1, name)
		}
		vars[name] = op
	}
	return nil, fmt.Errorf("mil: program has no return statement")
}

func parseRHS(rhs string, vars map[string]*algebra.Op) (*algebra.Op, error) {
	open := strings.IndexByte(rhs, '(')
	if open < 0 || !strings.HasSuffix(rhs, ")") {
		return nil, fmt.Errorf("malformed instruction %q", rhs)
	}
	opName := rhs[:open]
	argsStr := rhs[open+1 : len(rhs)-1]
	if opName == "table" {
		return parseTable(argsStr)
	}
	args, err := splitArgs(argsStr)
	if err != nil {
		return nil, err
	}
	getVar := func(i int) (*algebra.Op, error) {
		if i >= len(args) {
			return nil, fmt.Errorf("%s: missing operand %d", opName, i)
		}
		v, ok := vars[args[i]]
		if !ok {
			return nil, fmt.Errorf("%s: undefined variable %q", opName, args[i])
		}
		return v, nil
	}
	switch opName {
	case "project":
		in, err := getVar(0)
		if err != nil {
			return nil, err
		}
		return algebra.Project(in, args[1:]...)
	case "select":
		in, err := getVar(0)
		if err != nil {
			return nil, err
		}
		return algebra.Select(in, args[1])
	case "union", "cross", "elem", "attr":
		l, err := getVar(0)
		if err != nil {
			return nil, err
		}
		r, err := getVar(1)
		if err != nil {
			return nil, err
		}
		switch opName {
		case "union":
			return algebra.Union(l, r)
		case "cross":
			return algebra.Cross(l, r)
		case "elem":
			return algebra.Elem(l, r)
		default:
			return algebra.AttrC(l, r)
		}
	case "distinct", "doc", "roots", "text", "collection":
		in, err := getVar(0)
		if err != nil {
			return nil, err
		}
		switch opName {
		case "distinct":
			return algebra.Distinct(in), nil
		case "doc":
			return algebra.DocOp(in)
		case "roots":
			return algebra.Roots(in)
		case "collection":
			return algebra.CollOp(in)
		default:
			return algebra.Text(in)
		}
	case "join", "semijoin", "diff":
		l, err := getVar(0)
		if err != nil {
			return nil, err
		}
		r, err := getVar(1)
		if err != nil {
			return nil, err
		}
		kl, kr, err := parseKeys(args[2])
		if err != nil {
			return nil, err
		}
		switch opName {
		case "join":
			return algebra.Join(l, r, kl, kr)
		case "semijoin":
			return algebra.SemiJoin(l, r, kl, kr)
		default:
			return algebra.Diff(l, r, kl, kr)
		}
	case "rownum":
		in, err := getVar(0)
		if err != nil {
			return nil, err
		}
		ords, err := parseOrder(args[2])
		if err != nil {
			return nil, err
		}
		part := args[3]
		if part == "-" {
			part = ""
		}
		return algebra.RowNum(in, args[1], ords, part)
	case "rowid":
		in, err := getVar(0)
		if err != nil {
			return nil, err
		}
		return algebra.RowID(in, args[1])
	case "range":
		in, err := getVar(0)
		if err != nil {
			return nil, err
		}
		return algebra.Range(in, args[1], args[2])
	case "fun":
		in, err := getVar(0)
		if err != nil {
			return nil, err
		}
		fargs, err := splitArgs(strings.Trim(args[3], "()"))
		if err != nil {
			return nil, err
		}
		if rest, ok := strings.CutPrefix(args[2], "typeis:"); ok {
			tyStr, tyName, _ := strings.Cut(rest, ":")
			ty, err := strconv.Atoi(tyStr)
			if err != nil {
				return nil, fmt.Errorf("bad typeis %q", args[2])
			}
			return algebra.TypeTest(in, args[1], algebra.SeqType(ty), tyName, fargs[0])
		}
		kind, ok := funByName[args[2]]
		if !ok {
			return nil, fmt.Errorf("unknown function %q", args[2])
		}
		return algebra.Fun(in, args[1], kind, fargs...)
	case "aggr":
		in, err := getVar(0)
		if err != nil {
			return nil, err
		}
		kind, ok := aggByName[args[2]]
		if !ok {
			return nil, fmt.Errorf("unknown aggregate %q", args[2])
		}
		arg := args[3]
		if arg == "-" {
			arg = ""
		}
		part := args[4]
		if part == "-" {
			part = ""
		}
		sep, err := strconv.Unquote(args[5])
		if err != nil {
			return nil, fmt.Errorf("bad separator %q", args[5])
		}
		a, err := algebra.Aggr(in, args[1], kind, arg, part)
		if err != nil {
			return nil, err
		}
		a.Sep = sep
		return a, nil
	case "step":
		in, err := getVar(0)
		if err != nil {
			return nil, err
		}
		axis, err := algebra.AxisByName(args[1])
		if err != nil {
			return nil, err
		}
		tk, ok := testByName[args[2]]
		if !ok {
			return nil, fmt.Errorf("unknown node test %q", args[2])
		}
		name, err := strconv.Unquote(args[3])
		if err != nil {
			return nil, fmt.Errorf("bad test name %q", args[3])
		}
		return algebra.Step(in, axis, algebra.KindTest{Kind: tk, Name: name})
	}
	return nil, fmt.Errorf("unknown instruction %q", opName)
}

// splitArgs splits a comma-separated argument list, respecting quotes,
// parentheses, and brackets.
func splitArgs(s string) ([]string, error) {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr {
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '(', '[':
			depth++
		case ')', ']':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced brackets in %q", s)
			}
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if inStr || depth != 0 {
		return nil, fmt.Errorf("unbalanced quoting in %q", s)
	}
	if last := strings.TrimSpace(s[start:]); last != "" {
		out = append(out, last)
	}
	return out, nil
}

// parseKeys parses "(a=b, c=d)".
func parseKeys(s string) ([]string, []string, error) {
	inner := strings.Trim(s, "()")
	parts, err := splitArgs(inner)
	if err != nil {
		return nil, nil, err
	}
	kl := make([]string, len(parts))
	kr := make([]string, len(parts))
	for i, p := range parts {
		l, r, ok := strings.Cut(p, "=")
		if !ok {
			return nil, nil, fmt.Errorf("bad key pair %q", p)
		}
		kl[i], kr[i] = strings.TrimSpace(l), strings.TrimSpace(r)
	}
	return kl, kr, nil
}

// parseOrder parses "(a, b:desc)".
func parseOrder(s string) ([]algebra.OrderSpec, error) {
	inner := strings.Trim(s, "()")
	if strings.TrimSpace(inner) == "" {
		return nil, nil
	}
	parts, err := splitArgs(inner)
	if err != nil {
		return nil, err
	}
	out := make([]algebra.OrderSpec, len(parts))
	for i, p := range parts {
		col, mod, hasMod := strings.Cut(p, ":")
		out[i] = algebra.OrderSpec{Col: strings.TrimSpace(col)}
		if hasMod {
			if strings.TrimSpace(mod) != "desc" {
				return nil, fmt.Errorf("bad order modifier %q", mod)
			}
			out[i].Desc = true
		}
	}
	return out, nil
}

// parseTable parses table(name:type[items...], ...).
func parseTable(s string) (*algebra.Op, error) {
	cols, err := splitArgs(s)
	if err != nil {
		return nil, err
	}
	t := &bat.Table{}
	for _, cs := range cols {
		head, items, ok := strings.Cut(cs, "[")
		if !ok || !strings.HasSuffix(items, "]") {
			return nil, fmt.Errorf("bad column %q", cs)
		}
		items = items[:len(items)-1]
		name, tyName, ok := strings.Cut(head, ":")
		if !ok {
			return nil, fmt.Errorf("bad column head %q", head)
		}
		ty, err := colType(strings.TrimSpace(tyName))
		if err != nil {
			return nil, err
		}
		b := bat.NewVec(ty, 8)
		for items = strings.TrimSpace(items); items != ""; {
			var lit string
			lit, items, err = cutItem(items)
			if err != nil {
				return nil, err
			}
			it, err := parseItem(lit)
			if err != nil {
				return nil, err
			}
			b.AppendItem(it)
		}
		if err := t.AddCol(strings.TrimSpace(name), b.Build()); err != nil {
			return nil, err
		}
	}
	return algebra.Lit(t), nil
}

func colType(s string) (bat.ColType, error) {
	switch s {
	case "int":
		return bat.TInt, nil
	case "dbl":
		return bat.TFloat, nil
	case "str":
		return bat.TStr, nil
	case "bit":
		return bat.TBool, nil
	case "node":
		return bat.TNode, nil
	case "item":
		return bat.TItem, nil
	}
	return 0, fmt.Errorf("unknown column type %q", s)
}

// cutItem splits the first item literal off a space-separated item list,
// respecting quoted strings.
func cutItem(s string) (lit, rest string, err error) {
	if s == "" {
		return "", "", fmt.Errorf("empty item literal")
	}
	if s[0] == 's' || s[0] == 'u' {
		if len(s) < 2 || s[1] != '"' {
			return "", "", fmt.Errorf("malformed string literal %q", s)
		}
		for i := 2; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				return s[:i+1], strings.TrimSpace(s[i+1:]), nil
			}
		}
		return "", "", fmt.Errorf("unterminated string literal %q", s)
	}
	if sp := strings.IndexByte(s, ' '); sp >= 0 {
		return s[:sp], strings.TrimSpace(s[sp+1:]), nil
	}
	return s, "", nil
}

func parseItem(lit string) (bat.Item, error) {
	if lit == "bt" {
		return bat.Bool(true), nil
	}
	if lit == "bf" {
		return bat.Bool(false), nil
	}
	if len(lit) < 2 {
		return bat.Item{}, fmt.Errorf("bad item literal %q", lit)
	}
	body := lit[1:]
	switch lit[0] {
	case 'i':
		n, err := strconv.ParseInt(body, 10, 64)
		if err != nil {
			return bat.Item{}, fmt.Errorf("bad int literal %q", lit)
		}
		return bat.Int(n), nil
	case 'd':
		f, err := strconv.ParseFloat(body, 64)
		if err != nil {
			return bat.Item{}, fmt.Errorf("bad double literal %q", lit)
		}
		return bat.Float(f), nil
	case 's', 'u':
		s, err := strconv.Unquote(body)
		if err != nil {
			return bat.Item{}, fmt.Errorf("bad string literal %q", lit)
		}
		if lit[0] == 'u' {
			return bat.Untyped(s), nil
		}
		return bat.Str(s), nil
	case 'n':
		fs, ps, ok := strings.Cut(body, ".")
		if !ok {
			return bat.Item{}, fmt.Errorf("bad node literal %q", lit)
		}
		f, err1 := strconv.ParseInt(fs, 10, 32)
		p, err2 := strconv.ParseInt(ps, 10, 32)
		if err1 != nil || err2 != nil {
			return bat.Item{}, fmt.Errorf("bad node literal %q", lit)
		}
		return bat.Node(bat.NodeRef{Frag: int32(f), Pre: int32(p)}), nil
	}
	return bat.Item{}, fmt.Errorf("bad item literal %q", lit)
}
