// Package mil implements the back-end protocol of the Pathfinder stack:
// compiled algebra plans are linearized into a textual program in the
// spirit of MIL (the MonetDB Interpreter Language), shipped to a server,
// parsed there, and executed against the column engine (§4: "translates
// them into a relational algebra expression tree, represented in terms of
// a MIL program. The code is shipped to a MonetDB server").
//
// A program is a sequence of single-assignment instructions, one per
// algebra operator, followed by a return statement:
//
//	v0 := table(iter:int[i1], pos:int[i1], item:item[i42]);
//	v1 := rownum(v0, inner, (iter, pos), -);
//	return v1;
//
// The DAG structure of the plan is preserved through variable reuse —
// exactly how MonetDB gets common subexpression sharing from MIL variable
// bindings.
package mil

import (
	"fmt"
	"strconv"
	"strings"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
)

// Emit linearizes a plan DAG into a MIL program.
func Emit(root *algebra.Op) (string, error) {
	e := &emitter{ids: make(map[*algebra.Op]int)}
	id, err := e.emit(root)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&e.sb, "return v%d;\n", id)
	return e.sb.String(), nil
}

type emitter struct {
	sb  strings.Builder
	ids map[*algebra.Op]int
}

func (e *emitter) emit(o *algebra.Op) (int, error) {
	if id, ok := e.ids[o]; ok {
		return id, nil
	}
	ins := make([]int, len(o.In))
	for i, in := range o.In {
		id, err := e.emit(in)
		if err != nil {
			return 0, err
		}
		ins[i] = id
	}
	id := len(e.ids)
	e.ids[o] = id
	rhs, err := e.rhs(o, ins)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(&e.sb, "v%d := %s;\n", id, rhs)
	return id, nil
}

func (e *emitter) rhs(o *algebra.Op, in []int) (string, error) {
	v := func(i int) string { return fmt.Sprintf("v%d", in[i]) }
	switch o.Kind {
	case algebra.OpLit:
		return emitTable(o.Lit)
	case algebra.OpProject:
		parts := make([]string, len(o.Proj))
		for i, p := range o.Proj {
			parts[i] = p.New + ":" + p.Old
		}
		return fmt.Sprintf("project(%s, %s)", v(0), strings.Join(parts, ", ")), nil
	case algebra.OpSelect:
		return fmt.Sprintf("select(%s, %s)", v(0), o.Col), nil
	case algebra.OpUnion:
		return fmt.Sprintf("union(%s, %s)", v(0), v(1)), nil
	case algebra.OpDiff:
		return fmt.Sprintf("diff(%s, %s, %s)", v(0), v(1), keyPairs(o)), nil
	case algebra.OpDistinct:
		return fmt.Sprintf("distinct(%s)", v(0)), nil
	case algebra.OpJoin:
		return fmt.Sprintf("join(%s, %s, %s)", v(0), v(1), keyPairs(o)), nil
	case algebra.OpSemiJoin:
		return fmt.Sprintf("semijoin(%s, %s, %s)", v(0), v(1), keyPairs(o)), nil
	case algebra.OpCross:
		return fmt.Sprintf("cross(%s, %s)", v(0), v(1)), nil
	case algebra.OpRowNum:
		ords := make([]string, len(o.Order))
		for i, s := range o.Order {
			ords[i] = s.Col
			if s.Desc {
				ords[i] += ":desc"
			}
		}
		part := o.Part
		if part == "" {
			part = "-"
		}
		return fmt.Sprintf("rownum(%s, %s, (%s), %s)", v(0), o.Col, strings.Join(ords, ", "), part), nil
	case algebra.OpRowID:
		return fmt.Sprintf("rowid(%s, %s)", v(0), o.Col), nil
	case algebra.OpFun:
		name, err := funName(o)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("fun(%s, %s, %s, (%s))", v(0), o.Col, name, strings.Join(o.Args, ", ")), nil
	case algebra.OpAggr:
		arg := "-"
		if len(o.Args) > 0 {
			arg = o.Args[0]
		}
		part := o.Part
		if part == "" {
			part = "-"
		}
		return fmt.Sprintf("aggr(%s, %s, %s, %s, %s, %s)",
			v(0), o.Col, aggName(o.Agg), arg, part, strconv.Quote(o.Sep)), nil
	case algebra.OpStep:
		return fmt.Sprintf("step(%s, %s, %s, %s)",
			v(0), o.Axis, testName(o.Test.Kind), strconv.Quote(o.Test.Name)), nil
	case algebra.OpDoc:
		return fmt.Sprintf("doc(%s)", v(0)), nil
	case algebra.OpRoots:
		return fmt.Sprintf("roots(%s)", v(0)), nil
	case algebra.OpElem:
		return fmt.Sprintf("elem(%s, %s)", v(0), v(1)), nil
	case algebra.OpText:
		return fmt.Sprintf("text(%s)", v(0)), nil
	case algebra.OpAttrC:
		return fmt.Sprintf("attr(%s, %s)", v(0), v(1)), nil
	case algebra.OpRange:
		return fmt.Sprintf("range(%s, %s, %s)", v(0), o.KeyL[0], o.KeyL[1]), nil
	case algebra.OpColl:
		return fmt.Sprintf("collection(%s)", v(0)), nil
	}
	return "", fmt.Errorf("mil: cannot emit operator %s", o.Kind)
}

func keyPairs(o *algebra.Op) string {
	parts := make([]string, len(o.KeyL))
	for i := range o.KeyL {
		parts[i] = o.KeyL[i] + "=" + o.KeyR[i]
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// funNames maps FunKind to stable MIL identifiers (FunKind.String yields
// symbols like "+" that do not lex well).
var funNames = map[algebra.FunKind]string{
	algebra.FunAdd: "add", algebra.FunSub: "sub", algebra.FunMul: "mul",
	algebra.FunDiv: "div", algebra.FunIDiv: "idiv", algebra.FunMod: "mod",
	algebra.FunNeg: "neg",
	algebra.FunEq:  "eq", algebra.FunNe: "ne", algebra.FunLt: "lt",
	algebra.FunLe: "le", algebra.FunGt: "gt", algebra.FunGe: "ge",
	algebra.FunAnd: "and", algebra.FunOr: "or", algebra.FunNot: "not",
	algebra.FunConcat: "concat", algebra.FunContains: "contains",
	algebra.FunStartsWith: "startswith", algebra.FunStringLength: "strlen",
	algebra.FunAtomize: "data", algebra.FunString: "string",
	algebra.FunNumber: "number", algebra.FunBoolWrap: "boolean",
	algebra.FunDocBefore: "docbefore", algebra.FunNodeIs: "nodeis",
	algebra.FunEbvItem:   "ebv",
	algebra.FunSubstring: "substring", algebra.FunSubstring3: "substring3",
	algebra.FunNameOf: "nameof",
}

var funByName = invertFuns()

func invertFuns() map[string]algebra.FunKind {
	m := make(map[string]algebra.FunKind, len(funNames))
	for k, v := range funNames {
		m[v] = k
	}
	return m
}

func funName(o *algebra.Op) (string, error) {
	if o.Fun == algebra.FunTypeIs {
		return fmt.Sprintf("typeis:%d:%s", o.Type, o.TypeName), nil
	}
	if n, ok := funNames[o.Fun]; ok {
		return n, nil
	}
	return "", fmt.Errorf("mil: no name for function %s", o.Fun)
}

var aggNames = map[algebra.AggKind]string{
	algebra.AggCount: "count", algebra.AggSum: "sum", algebra.AggMin: "min",
	algebra.AggMax: "max", algebra.AggAvg: "avg", algebra.AggStrJoin: "strjoin",
}

var aggByName = invertAggs()

func invertAggs() map[string]algebra.AggKind {
	m := make(map[string]algebra.AggKind, len(aggNames))
	for k, v := range aggNames {
		m[v] = k
	}
	return m
}

func aggName(a algebra.AggKind) string { return aggNames[a] }

var testNames = map[algebra.TestKind]string{
	algebra.TestElem: "elem", algebra.TestText: "text", algebra.TestNode: "node",
	algebra.TestComment: "comment", algebra.TestAttr: "attr",
}

var testByName = invertTests()

func invertTests() map[string]algebra.TestKind {
	m := make(map[string]algebra.TestKind, len(testNames))
	for k, v := range testNames {
		m[v] = k
	}
	return m
}

func testName(k algebra.TestKind) string { return testNames[k] }

// emitTable serializes a literal table: name:type[item item ...] per
// column. Item literals: i<int>, d<double>, s"str", u"str", bt/bf, and
// n<frag>.<pre> for node references.
func emitTable(t *bat.Table) (string, error) {
	var sb strings.Builder
	sb.WriteString("table(")
	for ci, name := range t.Cols() {
		if ci > 0 {
			sb.WriteString(", ")
		}
		vcol := t.MustCol(name)
		sb.WriteString(name)
		sb.WriteByte(':')
		sb.WriteString(vcol.Type().String())
		sb.WriteByte('[')
		for i := 0; i < vcol.Len(); i++ {
			if i > 0 {
				sb.WriteByte(' ')
			}
			lit, err := emitItem(vcol.ItemAt(i))
			if err != nil {
				return "", err
			}
			sb.WriteString(lit)
		}
		sb.WriteByte(']')
	}
	sb.WriteString(")")
	return sb.String(), nil
}

func emitItem(it bat.Item) (string, error) {
	switch it.Kind {
	case bat.KInt:
		return "i" + strconv.FormatInt(it.I, 10), nil
	case bat.KFloat:
		return "d" + strconv.FormatFloat(it.F, 'g', -1, 64), nil
	case bat.KStr:
		return "s" + strconv.Quote(it.S), nil
	case bat.KUntyped:
		return "u" + strconv.Quote(it.S), nil
	case bat.KBool:
		if it.B {
			return "bt", nil
		}
		return "bf", nil
	case bat.KNode:
		return fmt.Sprintf("n%d.%d", it.N.Frag, it.N.Pre), nil
	}
	return "", fmt.Errorf("mil: cannot emit item kind %s", it.Kind)
}
