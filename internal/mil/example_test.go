package mil_test

import (
	"fmt"
	"log"

	"pathfinder/internal/core"
	"pathfinder/internal/mil"
	"pathfinder/internal/xqcore"
)

// Compile XQuery to a MIL program (what pfshell ships to pfserver) and run
// it on an embedded server.
func ExampleEmit() {
	plan, _, err := core.CompileQuery(`sum((1, 2, 3))`, xqcore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	prog, err := mil.Emit(plan)
	if err != nil {
		log.Fatal(err)
	}
	srv := mil.NewServer()
	out, err := srv.Exec(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	// Output: 6
}
