package xqcore

import (
	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
)

// Expr is a Core expression. Every node carries its inferred static type.
type Expr interface {
	Ty() Type
}

type typed struct{ T Type }

func (t typed) Ty() Type { return t.T }

// Lit is an atomic literal.
type Lit struct {
	typed
	Val bat.Item
}

// Empty is the empty sequence.
type Empty struct{ typed }

// Seq is binary sequence concatenation (n-ary sequences normalize to
// right-nested Seq chains).
type Seq struct {
	typed
	L, R Expr
}

// Var is a variable reference.
type Var struct {
	typed
	Name string
}

// Let binds Var to Bound within Body.
type Let struct {
	typed
	Var   string
	Bound Expr
	Body  Expr
}

// OrderKey is a sort key of an ordered For; the key expression sees the
// loop variable.
type OrderKey struct {
	Key  Expr
	Desc bool
}

// For iterates Var over In, evaluating Body per binding; PosVar (optional)
// is bound to the 1-based iteration position. Order, when non-empty,
// reorders the bindings by the key values before concatenating the body
// results — the Core form of `order by`.
type For struct {
	typed
	Var    string
	PosVar string
	In     Expr
	Body   Expr
	Order  []OrderKey
}

// If branches on a boolean singleton condition (normalization inserts Ebv
// where the surface syntax allows any sequence).
type If struct {
	typed
	Cond, Then, Else Expr
}

// BinOp is an arithmetic (+ - * div idiv mod), value comparison
// (eq ne lt le gt ge), or Boolean (and or) operator over singleton
// (possibly optional) operands.
type BinOp struct {
	typed
	Op   string
	L, R Expr
}

// GenCmp is an existentially quantified general comparison (= != < <= > >=).
type GenCmp struct {
	typed
	Op   string
	L, R Expr
}

// NodeCmp is a node comparison (is, <<, >>).
type NodeCmp struct {
	typed
	Op   string
	L, R Expr
}

// Ebv computes the effective boolean value of its operand.
type Ebv struct {
	typed
	X Expr
}

// StepEx applies one location step to the node sequence In; the result is
// in distinct document order per the XPath semantics.
type StepEx struct {
	typed
	Axis algebra.Axis
	Test algebra.KindTest
	In   Expr
}

// DDO is fs:distinct-doc-order.
type DDO struct {
	typed
	X Expr
}

// Doc is fn:doc.
type Doc struct {
	typed
	X Expr
}

// Coll is fn:collection: the document sequence of a named collection, in
// shard-manifest order. X evaluates to the collection name; the empty
// string is the default collection (whatever store the evaluation is
// bound to).
type Coll struct {
	typed
	X Expr
}

// Root is fn:root.
type Root struct {
	typed
	X Expr
}

// Data is fn:data mapped over the operand sequence.
type Data struct {
	typed
	X Expr
}

// ElemC constructs an element (ε).
type ElemC struct {
	typed
	Name    Expr
	Content Expr
}

// AttrC constructs an attribute.
type AttrC struct {
	typed
	Name  Expr
	Value Expr
}

// TextC constructs a text node (τ).
type TextC struct {
	typed
	Content Expr
}

// InstanceOf tests whether X matches the sequence type (item class +
// occurrence); the compilation target of typeswitch.
type InstanceOf struct {
	typed
	X      Expr
	Of     algebra.SeqType
	OfName string // element(name) restriction
	Occ    byte   // 0, '?', '*', '+'
}

// Call is a call to one of the remaining built-ins that Core keeps
// primitive: count, sum, min, max, avg, empty, exists, not, boolean,
// string, number, concat, contains, starts-with, string-length,
// zero-or-one, exactly-one, position, last, true, false, string-join.
type Call struct {
	typed
	Name string
	Args []Expr
}

// PosFilter selects by position: the Nth item (1-based) or the last.
type PosFilter struct {
	typed
	In   Expr
	Nth  int64 // valid when !Last
	Last bool
}

// SortBy — reserved word avoidance: ordering is folded into For.Order.

// Helper constructors used by the normalizer and by tests.

// NewLit builds a literal with its precise type.
func NewLit(v bat.Item) *Lit {
	var c ItemClass
	switch v.Kind {
	case bat.KInt:
		c = IInt
	case bat.KFloat:
		c = IDbl
	case bat.KStr:
		c = IStr
	case bat.KBool:
		c = IBool
	case bat.KUntyped:
		c = IUntyped
	default:
		c = IAny
	}
	return &Lit{typed: typed{Type{Item: c, Card: COne}}, Val: v}
}

// NewEmpty builds the empty sequence.
func NewEmpty() *Empty { return &Empty{typed{Type{Item: IAny, Card: CEmpty}}} }

// NewLet builds a let binding; used by back ends that rewrite Core (e.g.
// the compiler's join recognition commuting lets past where-conditions).
func NewLet(v string, bound, body Expr) *Let {
	return &Let{typed: typed{body.Ty()}, Var: v, Bound: bound, Body: body}
}
