package xqcore

import "pathfinder/internal/xquery"

// substVars returns e with free references to the mapped variables
// replaced by their expressions (respecting shadowing binders). Shared
// subtrees in the result are harmless: both back ends treat the AST as
// immutable.
func substVars(e xquery.Expr, subs map[string]xquery.Expr) xquery.Expr {
	if len(subs) == 0 || e == nil {
		return e
	}
	switch x := e.(type) {
	case *xquery.Lit, *xquery.EmptySeq, *xquery.ContextItem:
		return e
	case *xquery.Var:
		if r, ok := subs[x.Name]; ok {
			return r
		}
		return e
	case *xquery.Seq:
		cp := *x
		cp.Items = make([]xquery.Expr, len(x.Items))
		for i, it := range x.Items {
			cp.Items[i] = substVars(it, subs)
		}
		return &cp
	case *xquery.FLWOR:
		cp := *x
		inner := copySubs(subs)
		cp.Clauses = make([]any, len(x.Clauses))
		for i, cl := range x.Clauses {
			switch c := cl.(type) {
			case xquery.ForClause:
				c.In = substVars(c.In, inner)
				delete(inner, c.Var)
				if c.PosVar != "" {
					delete(inner, c.PosVar)
				}
				cp.Clauses[i] = c
			case xquery.LetClause:
				c.In = substVars(c.In, inner)
				delete(inner, c.Var)
				cp.Clauses[i] = c
			}
		}
		cp.Where = substVars(x.Where, inner)
		cp.Order = make([]xquery.OrderKey, len(x.Order))
		for i, k := range x.Order {
			cp.Order[i] = xquery.OrderKey{Key: substVars(k.Key, inner), Desc: k.Desc}
		}
		cp.Return = substVars(x.Return, inner)
		return &cp
	case *xquery.Quantified:
		cp := *x
		cp.In = substVars(x.In, subs)
		inner := copySubs(subs)
		delete(inner, x.Var)
		cp.Sat = substVars(x.Sat, inner)
		return &cp
	case *xquery.If:
		cp := *x
		cp.Cond = substVars(x.Cond, subs)
		cp.Then = substVars(x.Then, subs)
		cp.Else = substVars(x.Else, subs)
		return &cp
	case *xquery.TypeSwitch:
		cp := *x
		cp.Operand = substVars(x.Operand, subs)
		cp.Cases = make([]xquery.TypeSwitchCase, len(x.Cases))
		for i, c := range x.Cases {
			inner := copySubs(subs)
			if c.Var != "" {
				delete(inner, c.Var)
			}
			c.Ret = substVars(c.Ret, inner)
			cp.Cases[i] = c
		}
		inner := copySubs(subs)
		if x.DefaultVar != "" {
			delete(inner, x.DefaultVar)
		}
		cp.Default = substVars(x.Default, inner)
		return &cp
	case *xquery.Binary:
		cp := *x
		cp.L = substVars(x.L, subs)
		cp.R = substVars(x.R, subs)
		return &cp
	case *xquery.Unary:
		cp := *x
		cp.X = substVars(x.X, subs)
		return &cp
	case *xquery.Path:
		cp := *x
		cp.Root = substVars(x.Root, subs)
		cp.Steps = make([]xquery.Step, len(x.Steps))
		for i, s := range x.Steps {
			preds := make([]xquery.Expr, len(s.Preds))
			for j, p := range s.Preds {
				preds[j] = substVars(p, subs)
			}
			s.Preds = preds
			cp.Steps[i] = s
		}
		return &cp
	case *xquery.Filter:
		cp := *x
		cp.Base = substVars(x.Base, subs)
		cp.Preds = make([]xquery.Expr, len(x.Preds))
		for i, p := range x.Preds {
			cp.Preds[i] = substVars(p, subs)
		}
		return &cp
	case *xquery.FunCall:
		cp := *x
		cp.Args = make([]xquery.Expr, len(x.Args))
		for i, a := range x.Args {
			cp.Args[i] = substVars(a, subs)
		}
		return &cp
	case *xquery.DirElem:
		cp := *x
		cp.Attrs = make([]xquery.DirAttr, len(x.Attrs))
		for i, a := range x.Attrs {
			parts := make([]xquery.Expr, len(a.Parts))
			for j, p := range a.Parts {
				parts[j] = substVars(p, subs)
			}
			cp.Attrs[i] = xquery.DirAttr{Name: a.Name, Parts: parts}
		}
		cp.Content = make([]xquery.Expr, len(x.Content))
		for i, c := range x.Content {
			cp.Content[i] = substVars(c, subs)
		}
		return &cp
	case *xquery.CompElem:
		cp := *x
		cp.Name = substVars(x.Name, subs)
		cp.Content = substVars(x.Content, subs)
		return &cp
	case *xquery.CompAttr:
		cp := *x
		cp.Name = substVars(x.Name, subs)
		cp.Value = substVars(x.Value, subs)
		return &cp
	case *xquery.CompText:
		cp := *x
		cp.Content = substVars(x.Content, subs)
		return &cp
	}
	return e
}

func copySubs(subs map[string]xquery.Expr) map[string]xquery.Expr {
	out := make(map[string]xquery.Expr, len(subs))
	for k, v := range subs {
		out[k] = v
	}
	return out
}

// astVarRefs collects every variable referenced anywhere in a surface
// syntax tree (without scope analysis — used only to decide how early a
// where-clause may be applied, where an over-approximation is safe).
func astVarRefs(e xquery.Expr, out map[string]bool) {
	switch x := e.(type) {
	case nil, *xquery.Lit, *xquery.EmptySeq, *xquery.ContextItem:
	case *xquery.Var:
		out[x.Name] = true
	case *xquery.Seq:
		for _, it := range x.Items {
			astVarRefs(it, out)
		}
	case *xquery.FLWOR:
		for _, cl := range x.Clauses {
			switch c := cl.(type) {
			case xquery.ForClause:
				astVarRefs(c.In, out)
			case xquery.LetClause:
				astVarRefs(c.In, out)
			}
		}
		astVarRefs(x.Where, out)
		for _, k := range x.Order {
			astVarRefs(k.Key, out)
		}
		astVarRefs(x.Return, out)
	case *xquery.Quantified:
		astVarRefs(x.In, out)
		astVarRefs(x.Sat, out)
	case *xquery.If:
		astVarRefs(x.Cond, out)
		astVarRefs(x.Then, out)
		astVarRefs(x.Else, out)
	case *xquery.TypeSwitch:
		astVarRefs(x.Operand, out)
		for _, c := range x.Cases {
			astVarRefs(c.Ret, out)
		}
		astVarRefs(x.Default, out)
	case *xquery.Binary:
		astVarRefs(x.L, out)
		astVarRefs(x.R, out)
	case *xquery.Unary:
		astVarRefs(x.X, out)
	case *xquery.Path:
		astVarRefs(x.Root, out)
		for _, s := range x.Steps {
			for _, p := range s.Preds {
				astVarRefs(p, out)
			}
		}
	case *xquery.Filter:
		astVarRefs(x.Base, out)
		for _, p := range x.Preds {
			astVarRefs(p, out)
		}
	case *xquery.FunCall:
		for _, a := range x.Args {
			astVarRefs(a, out)
		}
	case *xquery.DirElem:
		for _, a := range x.Attrs {
			for _, p := range a.Parts {
				astVarRefs(p, out)
			}
		}
		for _, cnt := range x.Content {
			astVarRefs(cnt, out)
		}
	case *xquery.CompElem:
		astVarRefs(x.Name, out)
		astVarRefs(x.Content, out)
	case *xquery.CompAttr:
		astVarRefs(x.Name, out)
		astVarRefs(x.Value, out)
	case *xquery.CompText:
		astVarRefs(x.Content, out)
	}
}
