package xqcore

// FreeVars returns the set of variables occurring free in e.
func FreeVars(e Expr) map[string]bool {
	out := make(map[string]bool)
	collectFree(e, map[string]bool{}, out)
	return out
}

func collectFree(e Expr, bound map[string]bool, out map[string]bool) {
	switch x := e.(type) {
	case *Lit, *Empty, nil:
	case *Var:
		if !bound[x.Name] {
			out[x.Name] = true
		}
	case *Seq:
		collectFree(x.L, bound, out)
		collectFree(x.R, bound, out)
	case *Let:
		collectFree(x.Bound, bound, out)
		withBound(bound, []string{x.Var}, func() {
			collectFree(x.Body, bound, out)
		})
	case *For:
		collectFree(x.In, bound, out)
		vars := []string{x.Var}
		if x.PosVar != "" {
			vars = append(vars, x.PosVar)
		}
		withBound(bound, vars, func() {
			collectFree(x.Body, bound, out)
			for _, k := range x.Order {
				collectFree(k.Key, bound, out)
			}
		})
	case *If:
		collectFree(x.Cond, bound, out)
		collectFree(x.Then, bound, out)
		collectFree(x.Else, bound, out)
	case *BinOp:
		collectFree(x.L, bound, out)
		collectFree(x.R, bound, out)
	case *GenCmp:
		collectFree(x.L, bound, out)
		collectFree(x.R, bound, out)
	case *NodeCmp:
		collectFree(x.L, bound, out)
		collectFree(x.R, bound, out)
	case *Ebv:
		collectFree(x.X, bound, out)
	case *StepEx:
		collectFree(x.In, bound, out)
	case *DDO:
		collectFree(x.X, bound, out)
	case *Doc:
		collectFree(x.X, bound, out)
	case *Coll:
		collectFree(x.X, bound, out)
	case *Root:
		collectFree(x.X, bound, out)
	case *Data:
		collectFree(x.X, bound, out)
	case *ElemC:
		collectFree(x.Name, bound, out)
		collectFree(x.Content, bound, out)
	case *AttrC:
		collectFree(x.Name, bound, out)
		collectFree(x.Value, bound, out)
	case *TextC:
		collectFree(x.Content, bound, out)
	case *InstanceOf:
		collectFree(x.X, bound, out)
	case *Call:
		for _, a := range x.Args {
			collectFree(a, bound, out)
		}
	case *PosFilter:
		collectFree(x.In, bound, out)
	}
}

func withBound(bound map[string]bool, vars []string, f func()) {
	saved := make([]bool, len(vars))
	for i, v := range vars {
		saved[i] = bound[v]
		bound[v] = true
	}
	f()
	for i, v := range vars {
		bound[v] = saved[i]
	}
}

// UsesPositionOrLast reports whether e contains a position() or last()
// call outside any nested For (which would rebind the context).
func UsesPositionOrLast(e Expr) bool {
	switch x := e.(type) {
	case *Call:
		if (x.Name == "position" || x.Name == "last") && len(x.Args) == 0 {
			return true
		}
		for _, a := range x.Args {
			if UsesPositionOrLast(a) {
				return true
			}
		}
	case *Seq:
		return UsesPositionOrLast(x.L) || UsesPositionOrLast(x.R)
	case *Let:
		return UsesPositionOrLast(x.Bound) || UsesPositionOrLast(x.Body)
	case *For:
		// position()/last() in In still refers to the enclosing for.
		return UsesPositionOrLast(x.In)
	case *If:
		return UsesPositionOrLast(x.Cond) || UsesPositionOrLast(x.Then) || UsesPositionOrLast(x.Else)
	case *BinOp:
		return UsesPositionOrLast(x.L) || UsesPositionOrLast(x.R)
	case *GenCmp:
		return UsesPositionOrLast(x.L) || UsesPositionOrLast(x.R)
	case *NodeCmp:
		return UsesPositionOrLast(x.L) || UsesPositionOrLast(x.R)
	case *Ebv:
		return UsesPositionOrLast(x.X)
	case *StepEx:
		return UsesPositionOrLast(x.In)
	case *DDO:
		return UsesPositionOrLast(x.X)
	case *Doc:
		return UsesPositionOrLast(x.X)
	case *Coll:
		return UsesPositionOrLast(x.X)
	case *Root:
		return UsesPositionOrLast(x.X)
	case *Data:
		return UsesPositionOrLast(x.X)
	case *ElemC:
		return UsesPositionOrLast(x.Name) || UsesPositionOrLast(x.Content)
	case *AttrC:
		return UsesPositionOrLast(x.Name) || UsesPositionOrLast(x.Value)
	case *TextC:
		return UsesPositionOrLast(x.Content)
	case *InstanceOf:
		return UsesPositionOrLast(x.X)
	case *PosFilter:
		return UsesPositionOrLast(x.In)
	}
	return false
}
