package xqcore

import (
	"fmt"
	"strings"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/xquery"
)

// Options configures normalization.
type Options struct {
	// ContextDoc, when non-empty, binds absolute paths (/a, //a) to
	// fn:doc(ContextDoc) — the CLI convenience of running a bare XPath
	// against a chosen document. Empty means absolute paths require an
	// explicit fn:doc root and are otherwise rejected.
	ContextDoc string

	// Collection, when non-empty, binds absolute paths to
	// fn:collection(Collection) — the catalog-era generalization of
	// ContextDoc: a multi-document collection fans absolute paths out
	// over every document in manifest order. Takes precedence over
	// ContextDoc, and names the default collection for a bare
	// fn:collection() call.
	Collection string
}

// Normalize lowers a parsed query to Core: FLWOR sugar, quantifiers,
// predicates, typeswitch, direct constructors, and user-defined functions
// are compiled away, implicit atomization and effective-boolean-value
// coercions are made explicit, and every node is annotated with its
// inferred static type.
func Normalize(q *xquery.Query, opt Options) (Expr, error) {
	n := &normalizer{opt: opt, funcs: q.Funcs, env: map[string]Type{}}
	return n.norm(q.Body)
}

// NormalizeExpr normalizes a query given as a string; convenience for
// tests and tools.
func NormalizeExpr(src string, opt Options) (Expr, error) {
	q, err := xquery.Parse(src)
	if err != nil {
		return nil, err
	}
	return Normalize(q, opt)
}

type normErr struct{ error }

type normalizer struct {
	opt     Options
	funcs   map[string]*xquery.FuncDecl
	env     map[string]Type
	ctxVar  string // variable holding the path context item ("" = none)
	inlined []string
	fresh   int
}

func (n *normalizer) fail(at xquery.Pos, format string, args ...any) Expr {
	panic(normErr{fmt.Errorf("at %s: %s", at, fmt.Sprintf(format, args...))})
}

func (n *normalizer) freshVar(hint string) string {
	n.fresh++
	return fmt.Sprintf("%s#%d", hint, n.fresh)
}

// scoped runs f with v bound to t, restoring the environment after.
func (n *normalizer) scoped(v string, t Type, f func() Expr) Expr {
	old, had := n.env[v]
	n.env[v] = t
	defer func() {
		if had {
			n.env[v] = old
		} else {
			delete(n.env, v)
		}
	}()
	return f()
}

func (n *normalizer) norm(e xquery.Expr) (out Expr, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ne, ok := r.(normErr); ok {
				out, err = nil, ne.error
				return
			}
			panic(r)
		}
	}()
	return n.normE(e), nil
}

func (n *normalizer) normE(e xquery.Expr) Expr {
	switch x := e.(type) {
	case *xquery.Lit:
		return NewLit(x.Val)
	case *xquery.EmptySeq:
		return NewEmpty()
	case *xquery.Seq:
		return n.normSeq(x.Items)
	case *xquery.Var:
		t, ok := n.env[x.Name]
		if !ok {
			n.fail(x.Pos(), "unbound variable $%s", x.Name)
		}
		return &Var{typed: typed{t}, Name: x.Name}
	case *xquery.ContextItem:
		if n.ctxVar == "" {
			n.fail(x.Pos(), "no context item in this scope")
		}
		return &Var{typed: typed{n.env[n.ctxVar]}, Name: n.ctxVar}
	case *xquery.FLWOR:
		return n.normFLWOR(x)
	case *xquery.Quantified:
		return n.normQuantified(x)
	case *xquery.If:
		c := n.ebv(n.normE(x.Cond))
		th := n.normE(x.Then)
		el := n.normE(x.Else)
		return &If{typed: typed{unifyType(th.Ty(), el.Ty())}, Cond: c, Then: th, Else: el}
	case *xquery.TypeSwitch:
		return n.normTypeSwitch(x)
	case *xquery.Binary:
		return n.normBinary(x)
	case *xquery.Unary:
		if x.Op == "+" {
			return n.normE(x.X)
		}
		// -e ≡ 0 - e (empty operands propagate identically).
		opnd := n.atomize(n.normE(x.X))
		return &BinOp{typed: typed{arithType(opnd.Ty(), Type{IInt, COne})},
			Op: "-", L: NewLit(bat.Int(0)), R: opnd}
	case *xquery.Path:
		return n.normPath(x)
	case *xquery.Filter:
		return n.applyPreds(n.normE(x.Base), x.Preds)
	case *xquery.FunCall:
		return n.normCall(x)
	case *xquery.DirElem:
		return n.normDirElem(x)
	case *xquery.CompElem:
		name := n.normE(x.Name)
		var content Expr = NewEmpty()
		if x.Content != nil {
			content = n.normE(x.Content)
		}
		return &ElemC{typed: typed{Type{IElem, COne}}, Name: name, Content: content}
	case *xquery.CompAttr:
		return &AttrC{typed: typed{Type{IAttr, COne}},
			Name: n.normE(x.Name), Value: n.normE(x.Value)}
	case *xquery.CompText:
		return &TextC{typed: typed{Type{IText, COpt}}, Content: n.normE(x.Content)}
	}
	n.fail(e.Pos(), "unsupported expression %T", e)
	return nil
}

func (n *normalizer) normSeq(items []xquery.Expr) Expr {
	if len(items) == 0 {
		return NewEmpty()
	}
	out := n.normE(items[len(items)-1])
	for i := len(items) - 2; i >= 0; i-- {
		l := n.normE(items[i])
		out = &Seq{typed: typed{Type{
			Item: unify(l.Ty().Item, out.Ty().Item),
			Card: seqCard(l.Ty().Card, out.Ty().Card),
		}}, L: l, R: out}
	}
	return out
}

// FLWOR -------------------------------------------------------------------------

func (n *normalizer) normFLWOR(x *xquery.FLWOR) Expr {
	if len(x.Order) > 0 {
		fors := 0
		for _, c := range x.Clauses {
			if _, ok := c.(xquery.ForClause); ok {
				fors++
			}
		}
		if fors != 1 {
			n.fail(x.Pos(), "order by is supported on single-for FLWORs only (got %d for clauses)", fors)
		}
		// Order-by keys attach to the for clause, but XQuery lets them
		// reference let variables bound after it; substitute those
		// references with the let expressions so the keys only depend on
		// the loop variable and outer scope.
		lets := map[string]xquery.Expr{}
		for _, cl := range x.Clauses {
			if lc, ok := cl.(xquery.LetClause); ok {
				lets[lc.Var] = substVars(lc.In, lets)
			}
		}
		if len(lets) > 0 {
			subs := make([]xquery.OrderKey, len(x.Order))
			for i, k := range x.Order {
				subs[i] = xquery.OrderKey{Key: substVars(k.Key, lets), Desc: k.Desc}
			}
			cp := *x
			cp.Order = subs
			x = &cp
		}
	}
	// Hoist the where clause to the earliest point where every FLWOR
	// variable it references is bound: clauses after that point (typically
	// lets binding expensive intermediate results, as in XMark Q12) are
	// then only evaluated for surviving tuples.
	whereAt := -1
	if x.Where != nil {
		whereAt = len(x.Clauses)
		refs := map[string]bool{}
		astVarRefs(x.Where, refs)
		for j := len(x.Clauses) - 1; j >= 0; j-- {
			bindsRef := false
			switch c := x.Clauses[j].(type) {
			case xquery.ForClause:
				bindsRef = refs[c.Var] || (c.PosVar != "" && refs[c.PosVar])
			case xquery.LetClause:
				bindsRef = refs[c.Var]
			}
			if bindsRef {
				break
			}
			whereAt = j
		}
	}
	return n.flworChain(x, 0, whereAt)
}

func (n *normalizer) flworChain(x *xquery.FLWOR, i, whereAt int) Expr {
	if i == whereAt {
		cond := n.ebv(n.normE(x.Where))
		body := n.flworChain(x, i, -1)
		return &If{typed: typed{Type{body.Ty().Item, relaxEmpty(body.Ty().Card)}},
			Cond: cond, Then: body, Else: NewEmpty()}
	}
	if i == len(x.Clauses) {
		return n.normE(x.Return)
	}
	switch c := x.Clauses[i].(type) {
	case xquery.ForClause:
		in := n.normE(c.In)
		itemT := Type{Item: in.Ty().Item, Card: COne}
		var body Expr
		var keys []OrderKey
		build := func() Expr {
			// Keys normalize in the for variable's scope; references to
			// later let variables were substituted away in normFLWOR.
			for _, k := range x.Order {
				keys = append(keys, OrderKey{Key: n.atomize(n.normE(k.Key)), Desc: k.Desc})
			}
			return n.flworChain(x, i+1, whereAt)
		}
		if c.PosVar != "" {
			body = n.scoped(c.Var, itemT, func() Expr {
				return n.scoped(c.PosVar, Type{IInt, COne}, build)
			})
		} else {
			body = n.scoped(c.Var, itemT, build)
		}
		return &For{
			typed:  typed{Type{body.Ty().Item, forCard(in.Ty().Card, body.Ty().Card)}},
			Var:    c.Var,
			PosVar: c.PosVar,
			In:     in,
			Body:   body,
			Order:  keys,
		}
	case xquery.LetClause:
		bound := n.normE(c.In)
		body := n.scoped(c.Var, bound.Ty(), func() Expr { return n.flworChain(x, i+1, whereAt) })
		return &Let{typed: typed{body.Ty()}, Var: c.Var, Bound: bound, Body: body}
	}
	n.fail(x.Pos(), "unknown FLWOR clause")
	return nil
}

func (n *normalizer) normQuantified(x *xquery.Quantified) Expr {
	in := n.normE(x.In)
	itemT := Type{Item: in.Ty().Item, Card: COne}
	sat := n.scoped(x.Var, itemT, func() Expr { return n.ebv(n.normE(x.Sat)) })
	one := NewLit(bat.Int(1))
	boolT := typed{Type{IBool, COne}}
	if x.Every {
		// every ≡ empty(for $v in e return if (sat) then () else 1)
		loop := &For{typed: typed{Type{IInt, CMany}}, Var: x.Var, In: in,
			Body: &If{typed: typed{Type{IInt, COpt}}, Cond: sat, Then: NewEmpty(), Else: one}}
		return &Call{typed: boolT, Name: "empty", Args: []Expr{loop}}
	}
	// some ≡ exists(for $v in e return if (sat) then 1 else ())
	loop := &For{typed: typed{Type{IInt, CMany}}, Var: x.Var, In: in,
		Body: &If{typed: typed{Type{IInt, COpt}}, Cond: sat, Then: one, Else: NewEmpty()}}
	return &Call{typed: boolT, Name: "exists", Args: []Expr{loop}}
}

func (n *normalizer) normTypeSwitch(x *xquery.TypeSwitch) Expr {
	opnd := n.normE(x.Operand)
	tsVar := n.freshVar("ts")
	result := n.scoped(tsVar, opnd.Ty(), func() Expr {
		opndVar := func() Expr { return &Var{typed: typed{n.env[tsVar]}, Name: tsVar} }
		// Build the default branch first, then wrap cases inside-out.
		out := n.bindCaseVar(x.DefaultVar, tsVar, func() Expr { return n.normE(x.Default) })
		for i := len(x.Cases) - 1; i >= 0; i-- {
			c := x.Cases[i]
			test := n.instanceOf(opndVar(), c.Type)
			branch := n.bindCaseVar(c.Var, tsVar, func() Expr { return n.normE(c.Ret) })
			out = &If{typed: typed{unifyType(branch.Ty(), out.Ty())},
				Cond: test, Then: branch, Else: out}
		}
		return out
	})
	return &Let{typed: typed{result.Ty()}, Var: tsVar, Bound: opnd, Body: result}
}

// bindCaseVar evaluates f with caseVar aliased to tsVar (typeswitch case
// binding); an empty caseVar binds nothing.
func (n *normalizer) bindCaseVar(caseVar, tsVar string, f func() Expr) Expr {
	if caseVar == "" {
		return f()
	}
	body := n.scoped(caseVar, n.env[tsVar], f)
	return &Let{typed: typed{body.Ty()}, Var: caseVar,
		Bound: &Var{typed: typed{n.env[tsVar]}, Name: tsVar}, Body: body}
}

// instanceOf builds the InstanceOf test for a parsed sequence type.
func (n *normalizer) instanceOf(x Expr, t xquery.SeqType) Expr {
	ty, name, err := resolveSeqType(t)
	if err != nil {
		n.fail(xquery.Pos{}, "%s", err.Error())
	}
	return &InstanceOf{typed: typed{Type{IBool, COne}},
		X: x, Of: ty, OfName: name, Occ: t.Occ}
}

func resolveSeqType(t xquery.SeqType) (algebra.SeqType, string, error) {
	switch t.Name {
	case "item":
		return algebra.TyItem, "", nil
	case "node":
		return algebra.TyNode, "", nil
	case "element":
		return algebra.TyElem, t.Elem, nil
	case "attribute":
		return algebra.TyAttr, t.Elem, nil
	case "text":
		return algebra.TyText, "", nil
	case "document-node":
		return algebra.TyDocNode, "", nil
	case "xs:integer", "xs:int", "xs:long":
		return algebra.TyInteger, "", nil
	case "xs:double", "xs:decimal", "xs:float":
		return algebra.TyDouble, "", nil
	case "xs:string":
		return algebra.TyString, "", nil
	case "xs:boolean":
		return algebra.TyBoolean, "", nil
	case "xs:untypedAtomic":
		return algebra.TyUntyped, "", nil
	case "xs:anyAtomicType":
		return algebra.TyAtomic, "", nil
	case "empty-sequence":
		// empty-sequence() ≡ item()? with zero occurrences; encode as
		// item() with Occ '0' handled by the '?'-with-empty check.
		return algebra.TyItem, "", nil
	}
	return 0, "", fmt.Errorf("unsupported sequence type %q", t.Name)
}

// Binary operators ---------------------------------------------------------------

func (n *normalizer) normBinary(x *xquery.Binary) Expr {
	switch x.Op {
	case "and", "or":
		l := n.ebv(n.normE(x.L))
		r := n.ebv(n.normE(x.R))
		return &BinOp{typed: typed{Type{IBool, COne}}, Op: x.Op, L: l, R: r}
	case "+", "-", "*", "div", "idiv", "mod":
		l := n.atomize(n.normE(x.L))
		r := n.atomize(n.normE(x.R))
		return &BinOp{typed: typed{arithType(l.Ty(), r.Ty())}, Op: x.Op, L: l, R: r}
	case "eq", "ne", "lt", "le", "gt", "ge":
		l := n.atomize(n.normE(x.L))
		r := n.atomize(n.normE(x.R))
		card := COne
		if l.Ty().MaybeEmpty() || r.Ty().MaybeEmpty() {
			card = COpt
		}
		return &BinOp{typed: typed{Type{IBool, card}}, Op: x.Op, L: l, R: r}
	case "=", "!=", "<", "<=", ">", ">=":
		l := n.atomize(n.normE(x.L))
		r := n.atomize(n.normE(x.R))
		return &GenCmp{typed: typed{Type{IBool, COne}}, Op: x.Op, L: l, R: r}
	case "is", "<<", ">>":
		l := n.normE(x.L)
		r := n.normE(x.R)
		return &NodeCmp{typed: typed{Type{IBool, COpt}}, Op: x.Op, L: l, R: r}
	case "to":
		l := n.atomize(n.normE(x.L))
		r := n.atomize(n.normE(x.R))
		return &Call{typed: typed{Type{IInt, CMany}}, Name: "to", Args: []Expr{l, r}}
	case "|":
		l := n.normE(x.L)
		r := n.normE(x.R)
		seq := &Seq{typed: typed{Type{unify(l.Ty().Item, r.Ty().Item), CMany}}, L: l, R: r}
		return &DDO{typed: typed{Type{seq.Ty().Item, CMany}}, X: seq}
	case "intersect", "except":
		l := n.normE(x.L)
		r := n.normE(x.R)
		return &Call{typed: typed{Type{unify(l.Ty().Item, r.Ty().Item), CMany}},
			Name: x.Op, Args: []Expr{l, r}}
	}
	n.fail(x.Pos(), "unsupported operator %q", x.Op)
	return nil
}

func arithType(l, r Type) Type {
	item := INum
	if l.Item == IInt && r.Item == IInt {
		item = IInt
	}
	card := COne
	if l.MaybeEmpty() || r.MaybeEmpty() {
		card = COpt
	}
	return Type{Item: item, Card: card}
}

// atomize wraps X in fn:data unless it is statically atomic already.
func (n *normalizer) atomize(x Expr) Expr {
	if x.Ty().Item.IsAtomicClass() {
		return x
	}
	item := IUntyped
	if !x.Ty().Item.IsNodeClass() {
		item = IAtom
	}
	return &Data{typed: typed{Type{item, x.Ty().Card}}, X: x}
}

// ebv wraps X in an effective-boolean-value coercion unless it is already
// a boolean singleton.
func (n *normalizer) ebv(x Expr) Expr {
	if t := x.Ty(); t.Item == IBool && t.Card == COne {
		return x
	}
	return &Ebv{typed: typed{Type{IBool, COne}}, X: x}
}

// Paths --------------------------------------------------------------------------

func (n *normalizer) normPath(x *xquery.Path) Expr {
	var cur Expr
	switch {
	case x.Root != nil:
		cur = n.normE(x.Root)
	case x.Absolute:
		if n.opt.Collection != "" {
			cur = &Coll{typed: typed{Type{IDoc, CMany}},
				X: NewLit(bat.Str(n.opt.Collection))}
		} else if n.opt.ContextDoc != "" {
			cur = &Doc{typed: typed{Type{IDoc, COne}},
				X: NewLit(bat.Str(n.opt.ContextDoc))}
		} else if n.ctxVar != "" {
			cv := &Var{typed: typed{n.env[n.ctxVar]}, Name: n.ctxVar}
			cur = &Root{typed: typed{Type{IDoc, cv.Ty().Card}}, X: cv}
		} else {
			n.fail(x.Pos(), "absolute path without a context document (use fn:doc or -doc)")
		}
	default:
		if n.ctxVar == "" {
			n.fail(x.Pos(), "relative path without a context item")
		}
		cur = &Var{typed: typed{n.env[n.ctxVar]}, Name: n.ctxVar}
	}
	for _, s := range x.Steps {
		cur = n.normStep(cur, s, x.Pos())
	}
	return cur
}

func (n *normalizer) normStep(in Expr, s xquery.Step, at xquery.Pos) Expr {
	axis, err := algebra.AxisByName(s.Axis)
	if err != nil {
		n.fail(at, "%s", err.Error())
	}
	test, err := resolveTest(s.Test)
	if err != nil {
		n.fail(at, "%s", err.Error())
	}
	item := IElem
	switch test.Kind {
	case algebra.TestText:
		item = IText
	case algebra.TestAttr:
		item = IAttr
	case algebra.TestNode, algebra.TestComment:
		item = INode
	}
	out := Expr(&StepEx{typed: typed{Type{item, CMany}}, Axis: axis, Test: test, In: in})
	return n.applyPreds(out, s.Preds)
}

func resolveTest(t xquery.NodeTest) (algebra.KindTest, error) {
	switch t.Kind {
	case "elem":
		return algebra.KindTest{Kind: algebra.TestElem, Name: t.Name}, nil
	case "attr":
		return algebra.KindTest{Kind: algebra.TestAttr, Name: t.Name}, nil
	case "text":
		return algebra.KindTest{Kind: algebra.TestText}, nil
	case "node":
		return algebra.KindTest{Kind: algebra.TestNode}, nil
	case "comment":
		return algebra.KindTest{Kind: algebra.TestComment}, nil
	}
	return algebra.KindTest{}, fmt.Errorf("unsupported node test %q", t.Kind)
}

// applyPreds lowers predicates: integer literals and last() become
// positional filters, anything else becomes a filtering loop with the
// predicate evaluated under a context-item binding.
func (n *normalizer) applyPreds(in Expr, preds []xquery.Expr) Expr {
	for _, p := range preds {
		switch pe := p.(type) {
		case *xquery.Lit:
			if pe.Val.Kind == bat.KInt {
				in = &PosFilter{typed: typed{Type{in.Ty().Item, COpt}}, In: in, Nth: pe.Val.I}
				continue
			}
		case *xquery.FunCall:
			if (pe.Name == "last" || pe.Name == "fn:last") && len(pe.Args) == 0 {
				in = &PosFilter{typed: typed{Type{in.Ty().Item, COpt}}, In: in, Last: true}
				continue
			}
		}
		dot := n.freshVar("dot")
		itemT := Type{Item: in.Ty().Item, Card: COne}
		oldCtx := n.ctxVar
		n.ctxVar = dot
		body := n.scoped(dot, itemT, func() Expr {
			cond := n.ebv(n.normE(p))
			item := &Var{typed: typed{itemT}, Name: dot}
			return &If{typed: typed{Type{itemT.Item, COpt}},
				Cond: cond, Then: item, Else: NewEmpty()}
		})
		n.ctxVar = oldCtx
		in = &For{typed: typed{Type{in.Ty().Item, relaxEmpty(in.Ty().Card)}},
			Var: dot, In: in, Body: body}
	}
	return in
}

// Constructors --------------------------------------------------------------------

func (n *normalizer) normDirElem(x *xquery.DirElem) Expr {
	var parts []Expr
	for _, a := range x.Attrs {
		parts = append(parts, &AttrC{typed: typed{Type{IAttr, COne}},
			Name:  NewLit(bat.Str(a.Name)),
			Value: n.attrValue(a.Parts),
		})
	}
	for _, c := range x.Content {
		switch ce := c.(type) {
		case *xquery.Lit:
			// Literal text fragments become text nodes directly (no
			// space-joining with neighbouring enclosed expressions).
			parts = append(parts, &TextC{typed: typed{Type{IText, COpt}},
				Content: NewLit(ce.Val)})
		default:
			parts = append(parts, n.normE(c))
		}
	}
	var content Expr = NewEmpty()
	if len(parts) > 0 {
		content = parts[len(parts)-1]
		for i := len(parts) - 2; i >= 0; i-- {
			content = &Seq{typed: typed{Type{IAny, CMany}}, L: parts[i], R: content}
		}
	}
	return &ElemC{typed: typed{Type{IElem, COne}},
		Name: NewLit(bat.Str(x.Tag)), Content: content}
}

// attrValue builds the attribute value string: literal fragments
// concatenated with the space-joined string values of enclosed
// expressions.
func (n *normalizer) attrValue(parts []xquery.Expr) Expr {
	strT := typed{Type{IStr, COne}}
	var exprs []Expr
	for _, p := range parts {
		switch pe := p.(type) {
		case *xquery.Lit:
			exprs = append(exprs, NewLit(pe.Val))
		default:
			inner := n.normE(p)
			exprs = append(exprs, &Call{typed: strT, Name: "string-join",
				Args: []Expr{n.atomize(inner), NewLit(bat.Str(" "))}})
		}
	}
	if len(exprs) == 0 {
		return NewLit(bat.Str(""))
	}
	out := exprs[0]
	for _, e := range exprs[1:] {
		out = &Call{typed: strT, Name: "concat", Args: []Expr{out, e}}
	}
	return out
}

// Function calls ------------------------------------------------------------------

func (n *normalizer) normCall(x *xquery.FunCall) Expr {
	name := strings.TrimPrefix(x.Name, "fn:")
	arity := len(x.Args)
	arg := func(i int) Expr { return n.normE(x.Args[i]) }

	check := func(want int) {
		if arity != want {
			n.fail(x.Pos(), "%s expects %d argument(s), got %d", name, want, arity)
		}
	}
	switch name {
	case "doc":
		check(1)
		return &Doc{typed: typed{Type{IDoc, COne}}, X: arg(0)}
	case "collection":
		if arity > 1 {
			n.fail(x.Pos(), "collection expects 0 or 1 argument(s), got %d", arity)
		}
		// Bare fn:collection() names the default collection ("" when the
		// evaluation is bound to an anonymous store).
		var nameX Expr = NewLit(bat.Str(n.opt.Collection))
		if arity == 1 {
			nameX = arg(0)
		}
		return &Coll{typed: typed{Type{IDoc, CMany}}, X: nameX}
	case "root":
		check(1)
		a := arg(0)
		return &Root{typed: typed{Type{INode, a.Ty().Card}}, X: a}
	case "data":
		check(1)
		return n.atomize(arg(0))
	case "fs:distinct-doc-order", "distinct-doc-order":
		check(1)
		a := arg(0)
		return &DDO{typed: typed{Type{a.Ty().Item, relaxToMany(a.Ty().Card)}}, X: a}
	case "true":
		check(0)
		return NewLit(bat.Bool(true))
	case "false":
		check(0)
		return NewLit(bat.Bool(false))
	case "count":
		check(1)
		return &Call{typed: typed{Type{IInt, COne}}, Name: "count", Args: []Expr{arg(0)}}
	case "sum":
		check(1)
		return &Call{typed: typed{Type{INum, COne}}, Name: "sum", Args: []Expr{n.atomize(arg(0))}}
	case "avg":
		check(1)
		return &Call{typed: typed{Type{IDbl, COpt}}, Name: "avg", Args: []Expr{n.atomize(arg(0))}}
	case "min", "max":
		check(1)
		return &Call{typed: typed{Type{IAtom, COpt}}, Name: name, Args: []Expr{n.atomize(arg(0))}}
	case "empty", "exists":
		check(1)
		return &Call{typed: typed{Type{IBool, COne}}, Name: name, Args: []Expr{arg(0)}}
	case "not", "boolean":
		check(1)
		return &Call{typed: typed{Type{IBool, COne}}, Name: name, Args: []Expr{n.ebv(arg(0))}}
	case "string":
		check(1)
		return &Call{typed: typed{Type{IStr, COne}}, Name: "string", Args: []Expr{arg(0)}}
	case "number":
		check(1)
		return &Call{typed: typed{Type{IDbl, COne}}, Name: "number", Args: []Expr{arg(0)}}
	case "string-length":
		check(1)
		return &Call{typed: typed{Type{IInt, COne}}, Name: "string-length", Args: []Expr{arg(0)}}
	case "contains", "starts-with":
		check(2)
		return &Call{typed: typed{Type{IBool, COne}}, Name: name, Args: []Expr{arg(0), arg(1)}}
	case "concat":
		if arity < 2 {
			n.fail(x.Pos(), "concat expects at least 2 arguments")
		}
		out := arg(0)
		for i := 1; i < arity; i++ {
			out = &Call{typed: typed{Type{IStr, COne}}, Name: "concat", Args: []Expr{out, arg(i)}}
		}
		return out
	case "string-join":
		check(2)
		return &Call{typed: typed{Type{IStr, COne}}, Name: "string-join",
			Args: []Expr{n.atomize(arg(0)), arg(1)}}
	case "zero-or-one":
		check(1)
		a := arg(0)
		return &Call{typed: typed{Type{a.Ty().Item, COpt}}, Name: "zero-or-one", Args: []Expr{a}}
	case "exactly-one":
		check(1)
		a := arg(0)
		return &Call{typed: typed{Type{a.Ty().Item, COne}}, Name: "exactly-one", Args: []Expr{a}}
	case "position", "last":
		check(0)
		return &Call{typed: typed{Type{IInt, COne}}, Name: name}
	case "distinct-values":
		check(1)
		a := n.atomize(arg(0))
		return &Call{typed: typed{Type{a.Ty().Item, CMany}}, Name: "distinct-values", Args: []Expr{a}}
	case "substring":
		if arity != 2 && arity != 3 {
			n.fail(x.Pos(), "substring expects 2 or 3 arguments, got %d", arity)
		}
		args := []Expr{arg(0), n.atomize(arg(1))}
		if arity == 3 {
			args = append(args, n.atomize(arg(2)))
		}
		return &Call{typed: typed{Type{IStr, COne}}, Name: "substring", Args: args}
	case "name":
		check(1)
		return &Call{typed: typed{Type{IStr, COne}}, Name: "name", Args: []Expr{arg(0)}}
	}

	if fd, ok := n.funcs[x.Name]; ok {
		return n.inline(fd, x)
	}
	n.fail(x.Pos(), "unknown function %s/%d", x.Name, arity)
	return nil
}

func relaxToMany(c Card) Card {
	switch c {
	case COne, CPlus:
		return CPlus
	default:
		return CMany
	}
}

// inline expands a user-defined function call by let-binding the arguments
// over the body — the paper's UDF support (non-recursive).
func (n *normalizer) inline(fd *xquery.FuncDecl, call *xquery.FunCall) Expr {
	for _, active := range n.inlined {
		if active == fd.Name {
			n.fail(call.Pos(), "recursive function %s is not supported", fd.Name)
		}
	}
	if len(call.Args) != len(fd.Params) {
		n.fail(call.Pos(), "%s expects %d argument(s), got %d",
			fd.Name, len(fd.Params), len(call.Args))
	}
	args := make([]Expr, len(call.Args))
	for i := range call.Args {
		args[i] = n.normE(call.Args[i])
	}
	n.inlined = append(n.inlined, fd.Name)
	defer func() { n.inlined = n.inlined[:len(n.inlined)-1] }()

	// Bind parameters in a fresh scope: the body may only reference its
	// parameters, so normalize it under exactly those.
	savedEnv := n.env
	savedCtx := n.ctxVar
	n.env = map[string]Type{}
	n.ctxVar = ""
	for i, prm := range fd.Params {
		n.env[prm.Name] = args[i].Ty()
	}
	var body Expr
	func() {
		defer func() {
			n.env = savedEnv
			n.ctxVar = savedCtx
		}()
		body = n.normE(fd.Body)
	}()
	out := body
	for i := len(fd.Params) - 1; i >= 0; i-- {
		out = &Let{typed: typed{out.Ty()}, Var: fd.Params[i].Name,
			Bound: args[i], Body: out}
	}
	return out
}
