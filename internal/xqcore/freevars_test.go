package xqcore

import (
	"sort"
	"strings"
	"testing"

	"pathfinder/internal/xquery"
)

func freeOf(t *testing.T, src string) []string {
	t.Helper()
	// Bind the referenced variables in an outer wrapper so normalization
	// succeeds, then inspect the body's free variables.
	wrapped := `for $p in (1,2) return for $q in (3,4) return ` + src
	e, err := NormalizeExpr(wrapped, Options{ContextDoc: "ctx.xml"})
	if err != nil {
		t.Fatalf("normalize %q: %v", src, err)
	}
	body := e.(*For).Body.(*For).Body
	var out []string
	for v := range FreeVars(body) {
		if !strings.Contains(v, "#") { // ignore compiler-generated names
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

func TestFreeVarsAcrossConstructs(t *testing.T) {
	cases := map[string][]string{
		`$p + $q`:                         {"p", "q"},
		`let $x := $p return $x`:          {"p"},
		`for $x in $p return ($x, $q)`:    {"p", "q"},
		`if ($p = 1) then $q else ()`:     {"p", "q"},
		`some $x in $p satisfies $x = $q`: {"p", "q"},
		`<e a="{$p}">{$q}</e>`:            {"p", "q"},
		`typeswitch ($p) case xs:integer return $q default return 0`: {"p", "q"},
		`count($p) + sum($q)`:  {"p", "q"},
		`($p, 1)[1]`:           {"p"},
		`string-join($p, "-")`: {"p"},
		`element {"x"} {$q}`:   {"q"},
		`attribute a {$p}`:     {"p"},
		`text {$q}`:            {"q"},
		`$p << $q`:             {"p", "q"},
		`//a`:                  nil, // context doc, no vars
	}
	for src, want := range cases {
		got := freeOf(t, src)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("FreeVars(%s) = %v, want %v", src, got, want)
		}
	}
}

func TestFreeVarsShadowing(t *testing.T) {
	// $x is bound by the inner for; only $p is free.
	got := freeOf(t, `for $x in (1,2) return $x + $p`)
	if strings.Join(got, ",") != "p" {
		t.Errorf("shadowed: %v", got)
	}
	// A let that rebinds $p hides the outer one in its body, but the
	// bound expression still references it.
	got2 := freeOf(t, `let $p := $p + 1 return $p`)
	if strings.Join(got2, ",") != "p" {
		t.Errorf("let rebinding: %v", got2)
	}
}

func TestUsesPositionOrLastScoping(t *testing.T) {
	mk := func(src string) Expr {
		e, err := NormalizeExpr(`for $x in (1,2) return `+src, Options{})
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		return e.(*For).Body
	}
	if !UsesPositionOrLast(mk(`position()`)) {
		t.Error("direct position()")
	}
	if !UsesPositionOrLast(mk(`if (position() = 1) then 1 else 2`)) {
		t.Error("position() in a condition")
	}
	if !UsesPositionOrLast(mk(`(last(), 1)`)) {
		t.Error("last() in a sequence")
	}
	// A nested for rebinds the context: its body's position() is not the
	// outer one's concern.
	if UsesPositionOrLast(mk(`for $y in (1,2) return position()`)) {
		t.Error("nested for shields position()")
	}
	// ... but position() in the nested In still refers to the outer loop.
	if !UsesPositionOrLast(mk(`for $y in (position()) return $y`)) {
		t.Error("position() in a nested In")
	}
	if UsesPositionOrLast(mk(`1 + 2`)) {
		t.Error("plain arithmetic")
	}
}

func TestResolveSeqTypeVariants(t *testing.T) {
	ok := []string{
		"item()", "node()", "element()", "element(a)", "attribute()",
		"text()", "document-node()", "xs:integer", "xs:int", "xs:long",
		"xs:double", "xs:decimal", "xs:float", "xs:string", "xs:boolean",
		"xs:untypedAtomic", "xs:anyAtomicType",
	}
	for _, ty := range ok {
		src := `typeswitch (1) case ` + ty + ` return 1 default return 2`
		if _, err := NormalizeExpr(src, Options{}); err != nil {
			t.Errorf("%s: %v", ty, err)
		}
	}
	if _, err := NormalizeExpr(
		`typeswitch (1) case xs:gYearMonth return 1 default return 2`, Options{}); err == nil {
		t.Error("unsupported sequence type must fail")
	}
}

func TestTypeHelpers(t *testing.T) {
	if !(Type{IInt, COne}).AtMostOne() || !(Type{IInt, COpt}).AtMostOne() {
		t.Error("AtMostOne for one/opt")
	}
	if (Type{IInt, CMany}).AtMostOne() || (Type{IInt, CPlus}).AtMostOne() {
		t.Error("AtMostOne for many/plus")
	}
	if !(Type{IInt, COpt}).MaybeEmpty() || (Type{IInt, CPlus}).MaybeEmpty() {
		t.Error("MaybeEmpty")
	}
	if (Type{IInt, CEmpty}).String() != "empty-sequence()" {
		t.Error("empty type string")
	}
	if got := (Type{IElem, CMany}).String(); got != "element()*" {
		t.Errorf("type string = %q", got)
	}
}

// substVars is exercised indirectly by order-by-let substitution; check
// the binder-respecting branches directly over a rich AST.
func TestSubstVarsBranches(t *testing.T) {
	q, err := xquery.Parse(`
		for $a in (1,2)
		let $n := $a + 1
		order by (typeswitch ($n)
		          case $c as xs:integer return some $s in (1, $n) satisfies $s = $c
		          default $d return exists($d)),
		         <k v="{$n}">{.}</k>,
		         (//x)[$n]
		return $a`)
	if err != nil {
		t.Fatal(err)
	}
	// Normalization performs the substitution; it must succeed and leave
	// no reference to $n in the keys.
	e, err := Normalize(q, Options{ContextDoc: "c.xml"})
	_ = e
	// The context item `.` inside the constructor has no binding at the
	// key position — that is a legitimate error; what matters is that the
	// failure is NOT an unbound $n.
	if err != nil && strings.Contains(err.Error(), "$n") {
		t.Errorf("substitution left $n unresolved: %v", err)
	}
}
