package xqcore

import (
	"strings"
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
)

func normOK(t *testing.T, src string) Expr {
	t.Helper()
	e, err := NormalizeExpr(src, Options{ContextDoc: "ctx.xml"})
	if err != nil {
		t.Fatalf("normalize %q: %v", src, err)
	}
	return e
}

func normFail(t *testing.T, src string) {
	t.Helper()
	if _, err := NormalizeExpr(src, Options{}); err == nil {
		t.Errorf("normalize %q: expected error", src)
	}
}

func TestLiteralTypes(t *testing.T) {
	cases := map[string]Type{
		"1":      {IInt, COne},
		"1.5":    {IDbl, COne},
		`"x"`:    {IStr, COne},
		"true()": {IBool, COne},
		"()":     {IAny, CEmpty},
	}
	for src, want := range cases {
		e := normOK(t, src)
		if e.Ty() != want {
			t.Errorf("%s: type %v, want %v", src, e.Ty(), want)
		}
	}
}

func TestSeqNormalization(t *testing.T) {
	e := normOK(t, "(1, 2, 3)").(*Seq)
	if e.Ty().Card != CPlus {
		t.Errorf("seq card = %v", e.Ty().Card)
	}
	if _, ok := e.R.(*Seq); !ok {
		t.Error("right-nested chain expected")
	}
	// Nested sequence flattens structurally through chaining.
	e2 := normOK(t, "(1, (), 2)")
	if e2.Ty().Card != CPlus {
		t.Errorf("card with empty member = %v", e2.Ty().Card)
	}
}

func TestFLWORLowering(t *testing.T) {
	e := normOK(t, `for $v in (10,20) let $w := $v where $w > 5 return $w`).(*For)
	if e.Var != "v" {
		t.Fatalf("for var = %s", e.Var)
	}
	l, ok := e.Body.(*Let)
	if !ok {
		t.Fatalf("let lost: %T", e.Body)
	}
	iff, ok := l.Body.(*If)
	if !ok {
		t.Fatalf("where must lower to if, got %T", l.Body)
	}
	if _, ok := iff.Else.(*Empty); !ok {
		t.Error("where else-branch must be empty")
	}
}

func TestOrderByAttachesToFor(t *testing.T) {
	e := normOK(t, `for $i in (3,1,2) order by $i descending return $i`).(*For)
	if len(e.Order) != 1 || !e.Order[0].Desc {
		t.Fatalf("order keys: %+v", e.Order)
	}
	normFail(t, `for $a in (1), $b in (2) order by $a return $a`)
}

func TestQuantifierLowering(t *testing.T) {
	s := normOK(t, `some $x in (1,2) satisfies $x = 2`).(*Call)
	if s.Name != "exists" {
		t.Errorf("some lowers to exists, got %s", s.Name)
	}
	ev := normOK(t, `every $x in (1,2) satisfies $x = 2`).(*Call)
	if ev.Name != "empty" {
		t.Errorf("every lowers to empty, got %s", ev.Name)
	}
	if _, ok := ev.Args[0].(*For); !ok {
		t.Error("quantifier body must be a loop")
	}
}

func TestIfInsertsEbv(t *testing.T) {
	e := normOK(t, `if ((1,2)) then "a" else "b"`).(*If)
	if _, ok := e.Cond.(*Ebv); !ok {
		t.Errorf("non-boolean condition must be wrapped in ebv, got %T", e.Cond)
	}
	e2 := normOK(t, `if (1 = 1) then "a" else "b"`).(*If)
	if _, ok := e2.Cond.(*GenCmp); !ok {
		t.Errorf("boolean singleton needs no ebv, got %T", e2.Cond)
	}
}

func TestTypeswitchLowersToIfChain(t *testing.T) {
	e := normOK(t, `typeswitch (1)
		case xs:integer return "int"
		case xs:string return "str"
		default return "other"`).(*Let)
	first, ok := e.Body.(*If)
	if !ok {
		t.Fatalf("if chain expected, got %T", e.Body)
	}
	io, ok := first.Cond.(*InstanceOf)
	if !ok || io.Of != algebra.TyInteger {
		t.Errorf("first case: %+v", first.Cond)
	}
	second, ok := first.Else.(*If)
	if !ok {
		t.Fatalf("chained else")
	}
	if _, ok := second.Else.(*Lit); !ok {
		t.Error("default branch")
	}
}

func TestTypeswitchCaseVarBinding(t *testing.T) {
	e := normOK(t, `typeswitch ((1,2))
		case $n as xs:integer+ return $n
		default $d return $d`).(*Let)
	iff := e.Body.(*If)
	if io := iff.Cond.(*InstanceOf); io.Occ != '+' {
		t.Errorf("occurrence: %c", io.Occ)
	}
	if l, ok := iff.Then.(*Let); !ok || l.Var != "n" {
		t.Error("case var must be let-bound")
	}
}

func TestBinaryLowering(t *testing.T) {
	if e := normOK(t, `1 + 2`).(*BinOp); e.Ty() != (Type{IInt, COne}) {
		t.Errorf("int add type: %v", e.Ty())
	}
	if e := normOK(t, `1 + 2.5`).(*BinOp); e.Ty().Item != INum {
		t.Errorf("mixed add type: %v", e.Ty())
	}
	if _, ok := normOK(t, `1 = 2`).(*GenCmp); !ok {
		t.Error("general comparison node")
	}
	if _, ok := normOK(t, `1 eq 2`).(*BinOp); !ok {
		t.Error("value comparison node")
	}
	if _, ok := normOK(t, `//a << //b`).(*NodeCmp); !ok {
		t.Error("node comparison node")
	}
	and := normOK(t, `(//a) and 1`).(*BinOp)
	if _, ok := and.L.(*Ebv); !ok {
		t.Error("and operands take ebv")
	}
}

func TestUnaryMinus(t *testing.T) {
	e := normOK(t, `-(1)`).(*BinOp)
	if e.Op != "-" {
		t.Error("unary minus lowers to 0 - e")
	}
	if l := e.L.(*Lit); l.Val.I != 0 {
		t.Error("left operand must be 0")
	}
	if _, ok := normOK(t, `+(5)`).(*Lit); !ok {
		t.Error("unary plus is identity")
	}
}

func TestPathLowering(t *testing.T) {
	e := normOK(t, `/site/people`).(*StepEx)
	if e.Test.Name != "people" || e.Axis != algebra.Child {
		t.Errorf("outer step: %+v", e)
	}
	inner := e.In.(*StepEx)
	if inner.Test.Name != "site" {
		t.Error("inner step")
	}
	if _, ok := inner.In.(*Doc); !ok {
		t.Error("absolute path binds to the context document")
	}
	// // expands to descendant-or-self::node().
	d := normOK(t, `//item`).(*StepEx)
	ds := d.In.(*StepEx)
	if ds.Axis != algebra.DescendantOrSelf || ds.Test.Kind != algebra.TestNode {
		t.Errorf("// expansion: %+v", ds)
	}
}

func TestAbsolutePathWithoutContextFails(t *testing.T) {
	if _, err := NormalizeExpr(`/site`, Options{}); err == nil {
		t.Error("absolute path without context must fail")
	}
	normFail(t, `name`)
}

func TestPredicateLowering(t *testing.T) {
	// Positional literal.
	p := normOK(t, `(//a)[1]`).(*PosFilter)
	if p.Nth != 1 || p.Last {
		t.Errorf("pos filter: %+v", p)
	}
	// last().
	p2 := normOK(t, `(//a)[last()]`).(*PosFilter)
	if !p2.Last {
		t.Error("last filter")
	}
	// Boolean predicate with relative path context: the condition is a
	// boolean singleton (GenCmp already is; ebv would be identity).
	f := normOK(t, `(//person)[@id = "x"]`).(*For)
	iff := f.Body.(*If)
	if ct := iff.Cond.Ty(); ct.Item != IBool || ct.Card != COne {
		t.Errorf("predicate condition type: %v", ct)
	}
	if v, ok := iff.Then.(*Var); !ok || v.Name != f.Var {
		t.Error("predicate keeps the context item")
	}
}

func TestContextItemInPredicate(t *testing.T) {
	e := normOK(t, `(//a)[. = "x"]`).(*For)
	iff := e.Body.(*If)
	cmp := iff.Cond.(*GenCmp)
	if d, ok := cmp.L.(*Data); !ok {
		t.Errorf("context atomized: %T", cmp.L)
	} else if v, ok := d.X.(*Var); !ok || v.Name != e.Var {
		t.Error("context var")
	}
}

func TestDirConstructorLowering(t *testing.T) {
	e := normOK(t, `<a x="v{1}w">txt{2}</a>`).(*ElemC)
	if n := e.Name.(*Lit); n.Val.S != "a" {
		t.Error("tag name")
	}
	seq := e.Content.(*Seq)
	attr, ok := seq.L.(*AttrC)
	if !ok {
		t.Fatalf("attribute first: %T", seq.L)
	}
	if _, ok := attr.Value.(*Call); !ok {
		t.Error("attr value is a concat chain")
	}
	rest := seq.R.(*Seq)
	if _, ok := rest.L.(*TextC); !ok {
		t.Error("literal text becomes a text node")
	}
}

func TestBuiltinCalls(t *testing.T) {
	if c := normOK(t, `count(//a)`).(*Call); c.Name != "count" || c.Ty().Item != IInt {
		t.Error("count")
	}
	if _, ok := normOK(t, `doc("x.xml")`).(*Doc); !ok {
		t.Error("doc")
	}
	if _, ok := normOK(t, `root(//a)`).(*Root); !ok {
		t.Error("root")
	}
	if _, ok := normOK(t, `data(//a)`).(*Data); !ok {
		t.Error("data")
	}
	if c := normOK(t, `concat("a","b","c")`).(*Call); c.Name != "concat" {
		t.Error("concat chain")
	} else if _, ok := c.Args[0].(*Call); !ok {
		t.Error("concat left-nests")
	}
	if c := normOK(t, `not(empty(//a))`).(*Call); c.Name != "not" {
		t.Error("not")
	}
	if c := normOK(t, `zero-or-one((1,2))`).(*Call); c.Ty().Card != COpt {
		t.Error("zero-or-one type")
	}
	normFail(t, `frobnicate(1)`)
	normFail(t, `count(1, 2)`)
}

func TestUDFInlining(t *testing.T) {
	e, err := NormalizeExpr(`
		declare function local:convert($v) { 2.2 * $v };
		local:convert(100)`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l, ok := e.(*Let)
	if !ok || l.Var != "v" {
		t.Fatalf("inline shape: %T", e)
	}
	if _, ok := l.Body.(*BinOp); !ok {
		t.Error("inlined body")
	}
}

func TestUDFNestedAndArity(t *testing.T) {
	_, err := NormalizeExpr(`
		declare function local:f($x) { $x + 1 };
		declare function local:g($y) { local:f($y) * 2 };
		local:g(5)`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NormalizeExpr(`
		declare function local:f($x) { $x }; local:f()`, Options{}); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestRecursiveUDFRejected(t *testing.T) {
	_, err := NormalizeExpr(`
		declare function local:f($x) { local:f($x) };
		local:f(1)`, Options{})
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("recursion must be rejected, got %v", err)
	}
}

func TestUnboundVariable(t *testing.T) {
	normFail(t, `$nope`)
	// UDF bodies must not see the caller's scope.
	if _, err := NormalizeExpr(`
		declare function local:f() { $outer };
		let $outer := 1 return local:f()`, Options{}); err == nil {
		t.Error("UDF body referencing caller scope must fail")
	}
}

func TestVariableShadowing(t *testing.T) {
	e := normOK(t, `for $x in (1,2) return for $x in ("a") return $x`).(*For)
	inner := e.Body.(*For)
	v := inner.Body.(*Var)
	if v.Ty().Item != IStr {
		t.Errorf("inner $x type = %v, want string", v.Ty())
	}
}

func TestPrintAnnotatedCore(t *testing.T) {
	e := normOK(t, `for $v in (10,20) return $v + 100`)
	out := Print(e)
	for _, want := range []string{"for $v in", "op +", "xs:integer"} {
		if !strings.Contains(out, want) {
			t.Errorf("annotated core missing %q in:\n%s", want, out)
		}
	}
}

func TestPrintCoversAllNodes(t *testing.T) {
	srcs := []string{
		`()`, `(1, 2)`, `let $x := 1 return $x`,
		`if (1=1) then 1 else 2`,
		`//a[2]`, `//a[last()]`, `//a[. = "x"]`,
		`element {"n"} {1}`, `attribute a {"v"}`, `text {"t"}`,
		`typeswitch (1) case xs:integer return 1 default return 2`,
		`//a << //b`, `doc("d.xml")`, `data(//a)`, `root(//a)`,
		`fs:distinct-doc-order(//a)`, `count(//a)`,
		`for $i in (2,1) order by $i return $i`,
	}
	for _, src := range srcs {
		out := Print(normOK(t, src))
		if strings.Contains(out, "?*") {
			t.Errorf("%s: printer hit unknown node:\n%s", src, out)
		}
		if out == "" {
			t.Errorf("%s: empty print", src)
		}
	}
}

func TestTypeInferenceDetails(t *testing.T) {
	// A step over a document yields element()* etc.
	if e := normOK(t, `//a/@id`); e.Ty().Item != IAttr {
		t.Errorf("attribute step type: %v", e.Ty())
	}
	if e := normOK(t, `//a/text()`); e.Ty().Item != IText {
		t.Errorf("text step type: %v", e.Ty())
	}
	// for over many with singleton body is many.
	if e := normOK(t, `for $x in //a return 1`); e.Ty().Card != CMany {
		t.Errorf("for card: %v", e.Ty())
	}
	// if branches unify.
	if e := normOK(t, `if (1=1) then 1 else 2.5`); e.Ty().Item != INum {
		t.Errorf("if unification: %v", e.Ty())
	}
	if e := normOK(t, `if (1=1) then 1 else ()`); e.Ty().Card != COpt {
		t.Errorf("if with empty branch: %v", e.Ty())
	}
	// atomization of steps is untyped.
	if e := normOK(t, `data(//a)`); e.Ty().Item != IUntyped {
		t.Errorf("data of nodes: %v", e.Ty())
	}
}

func TestCardinalityAlgebra(t *testing.T) {
	if got := seqCard(COne, COne); got != CPlus {
		t.Errorf("1+1 card = %v", got)
	}
	if got := seqCard(CEmpty, COpt); got != COpt {
		t.Errorf("0+? card = %v", got)
	}
	if got := forCard(CMany, COne); got != CMany {
		t.Errorf("for card = %v", got)
	}
	if got := forCard(CPlus, CPlus); got != CPlus {
		t.Errorf("plus for card = %v", got)
	}
	if got := unifyCard(COne, CEmpty); got != COpt {
		t.Errorf("unify(1,0) = %v", got)
	}
	if got := unify(IInt, IDbl); got != INum {
		t.Errorf("unify int,dbl = %v", got)
	}
	if got := unify(IElem, IText); got != INode {
		t.Errorf("unify elem,text = %v", got)
	}
	if got := unify(IInt, IElem); got != IAny {
		t.Errorf("unify int,elem = %v", got)
	}
}

func TestOrderByLetVariableSubstitution(t *testing.T) {
	// Keys referencing let variables are substituted at the AST level, so
	// the resulting For carries keys over the loop variable only.
	e := normOK(t, `for $a in (3,1,2) let $n := $a * 10 order by $n return $a`).(*For)
	if len(e.Order) != 1 {
		t.Fatalf("keys = %d", len(e.Order))
	}
	free := FreeVars(e.Order[0].Key)
	if !free["a"] || free["n"] {
		t.Errorf("substituted key free vars = %v", free)
	}
	// Chained lets substitute transitively.
	e2 := normOK(t, `for $a in (1,2) let $x := $a + 1 let $y := $x * 2 order by $y return $a`).(*For)
	free2 := FreeVars(e2.Order[0].Key)
	if !free2["a"] || free2["x"] || free2["y"] {
		t.Errorf("chained substitution free vars = %v", free2)
	}
	// Shadowing inside the key stops substitution.
	e3 := normOK(t, `for $a in (1,2)
		let $n := $a
		order by count(for $n in (1,2,3) return $n)
		return $a`).(*For)
	if ty := e3.Order[0].Key.Ty(); ty.Item != IInt {
		t.Errorf("shadowed key type = %v", ty)
	}
}

func TestExtendedOperatorsNormalize(t *testing.T) {
	if c := normOK(t, `1 to 5`).(*Call); c.Name != "to" || c.Ty() != (Type{IInt, CMany}) {
		t.Errorf("to: %+v", c)
	}
	if d, ok := normOK(t, `//a | //b`).(*DDO); !ok {
		t.Error("| lowers to ddo of seq")
	} else if _, ok := d.X.(*Seq); !ok {
		t.Error("| operand")
	}
	if c := normOK(t, `//a intersect //b`).(*Call); c.Name != "intersect" {
		t.Error("intersect")
	}
	if c := normOK(t, `//a except //b`).(*Call); c.Name != "except" {
		t.Error("except")
	}
	if c := normOK(t, `distinct-values((1,2))`).(*Call); c.Name != "distinct-values" {
		t.Error("distinct-values")
	}
	if c := normOK(t, `substring("ab", 1)`).(*Call); c.Name != "substring" || len(c.Args) != 2 {
		t.Error("substring/2")
	}
	if c := normOK(t, `substring("ab", 1, 1)`).(*Call); len(c.Args) != 3 {
		t.Error("substring/3")
	}
	normFail(t, `substring("ab")`)
	if c := normOK(t, `name(//a)`).(*Call); c.Name != "name" {
		t.Error("name")
	}
}

func TestWhereHoisting(t *testing.T) {
	// The where references only the for variable, so it hoists above the
	// let: For → If → Let.
	e := normOK(t, `for $a in (1,2) let $n := $a * 10 where $a > 1 return $n`).(*For)
	iff, ok := e.Body.(*If)
	if !ok {
		t.Fatalf("where not hoisted above let: %T", e.Body)
	}
	if _, ok := iff.Then.(*Let); !ok {
		t.Errorf("let must be inside the hoisted where, got %T", iff.Then)
	}
	// A where referencing the let variable cannot hoist past it.
	e2 := normOK(t, `for $a in (1,2) let $n := $a * 10 where $n > 10 return $n`).(*For)
	if _, ok := e2.Body.(*Let); !ok {
		t.Errorf("where must stay below its let, got %T", e2.Body)
	}
}

func TestLitKindMapping(t *testing.T) {
	if NewLit(bat.Untyped("x")).Ty().Item != IUntyped {
		t.Error("untyped lit")
	}
	if NewLit(bat.Bool(true)).Ty().Item != IBool {
		t.Error("bool lit")
	}
}
