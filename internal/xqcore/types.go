// Package xqcore defines Pathfinder's XQuery Core intermediate
// representation and the normalization from the surface syntax into it.
// Core is the input of the loop-lifting compiler (internal/core) and of
// the navigational baseline interpreter (internal/navdom): syntactic sugar
// (where clauses, quantifiers, general predicates, typeswitch, direct
// constructors, user-defined functions) is compiled away here, so both
// back ends only deal with a small orthogonal language.
//
// The package also implements the lightweight static typing the demo
// exposes ("an output of type-annotated XQuery Core expression
// equivalents"): every Core node carries an inferred sequence type.
package xqcore

import "fmt"

// ItemClass is the item part of an inferred sequence type.
type ItemClass uint8

// Item classes, from most to least specific where nested.
const (
	IAny ItemClass = iota
	INode
	IElem
	IText
	IAttr
	IDoc
	IAtom
	INum
	IInt
	IDbl
	IStr
	IBool
	IUntyped
)

func (c ItemClass) String() string {
	switch c {
	case IAny:
		return "item()"
	case INode:
		return "node()"
	case IElem:
		return "element()"
	case IText:
		return "text()"
	case IAttr:
		return "attribute()"
	case IDoc:
		return "document-node()"
	case IAtom:
		return "xs:anyAtomicType"
	case INum:
		return "numeric"
	case IInt:
		return "xs:integer"
	case IDbl:
		return "xs:double"
	case IStr:
		return "xs:string"
	case IBool:
		return "xs:boolean"
	case IUntyped:
		return "xs:untypedAtomic"
	}
	return "?"
}

// Card is an occurrence range.
type Card uint8

// Cardinalities.
const (
	CEmpty Card = iota // exactly ()
	COne               // exactly one
	COpt               // zero or one
	CMany              // zero or more
	CPlus              // one or more
)

func (c Card) String() string {
	switch c {
	case CEmpty:
		return "empty"
	case COne:
		return ""
	case COpt:
		return "?"
	case CMany:
		return "*"
	case CPlus:
		return "+"
	}
	return "?"
}

// Type is an inferred sequence type.
type Type struct {
	Item ItemClass
	Card Card
}

func (t Type) String() string {
	if t.Card == CEmpty {
		return "empty-sequence()"
	}
	return fmt.Sprintf("%s%s", t.Item, t.Card)
}

// MaybeEmpty reports whether the type admits the empty sequence.
func (t Type) MaybeEmpty() bool { return t.Card != COne && t.Card != CPlus }

// AtMostOne reports whether the type admits at most one item.
func (t Type) AtMostOne() bool { return t.Card == COne || t.Card == COpt || t.Card == CEmpty }

// IsNodeClass reports whether the item class is a node class.
func (c ItemClass) IsNodeClass() bool {
	switch c {
	case INode, IElem, IText, IAttr, IDoc:
		return true
	}
	return false
}

// IsAtomicClass reports whether the item class is definitely atomic.
func (c ItemClass) IsAtomicClass() bool {
	switch c {
	case IAtom, INum, IInt, IDbl, IStr, IBool, IUntyped:
		return true
	}
	return false
}

// unify returns the least class covering both.
func unify(a, b ItemClass) ItemClass {
	if a == b {
		return a
	}
	if a.IsNodeClass() && b.IsNodeClass() {
		return INode
	}
	if (a == IInt || a == IDbl || a == INum) && (b == IInt || b == IDbl || b == INum) {
		return INum
	}
	if a.IsAtomicClass() && b.IsAtomicClass() {
		return IAtom
	}
	return IAny
}

// seqCard is the cardinality of a sequence concatenation.
func seqCard(a, b Card) Card {
	if a == CEmpty {
		return b
	}
	if b == CEmpty {
		return a
	}
	if a == COne && b == COne {
		return CPlus // at least two, CPlus is the closest bound
	}
	if a == COne || a == CPlus || b == COne || b == CPlus {
		return CPlus
	}
	return CMany
}

// unifyType combines two branch types (if/typeswitch).
func unifyType(a, b Type) Type {
	if a.Card == CEmpty {
		return Type{Item: b.Item, Card: relaxEmpty(b.Card)}
	}
	if b.Card == CEmpty {
		return Type{Item: a.Item, Card: relaxEmpty(a.Card)}
	}
	return Type{Item: unify(a.Item, b.Item), Card: unifyCard(a.Card, b.Card)}
}

func relaxEmpty(c Card) Card {
	switch c {
	case COne:
		return COpt
	case CPlus:
		return CMany
	}
	return c
}

func unifyCard(a, b Card) Card {
	if a == b {
		return a
	}
	amin, amax := bounds(a)
	bmin, bmax := bounds(b)
	if bmin < amin {
		amin = bmin
	}
	if bmax > amax {
		amax = bmax
	}
	switch {
	case amin >= 1 && amax == 1:
		return COne
	case amin >= 1:
		return CPlus
	case amax == 1:
		return COpt
	default:
		return CMany
	}
}

func bounds(c Card) (min, max int) {
	switch c {
	case CEmpty:
		return 0, 0
	case COne:
		return 1, 1
	case COpt:
		return 0, 1
	case CPlus:
		return 1, 2
	default:
		return 0, 2
	}
}

// forCard is the cardinality of a for loop: |In| iterations × |Body|.
func forCard(in, body Card) Card {
	if in == CEmpty || body == CEmpty {
		return CEmpty
	}
	imin, imax := bounds(in)
	bmin, bmax := bounds(body)
	min, max := imin*bmin, imax*bmax
	switch {
	case min >= 1 && max == 1:
		return COne
	case min >= 1:
		return CPlus
	case max == 1:
		return COpt
	default:
		return CMany
	}
}
