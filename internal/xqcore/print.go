package xqcore

import (
	"fmt"
	"strings"
)

// Print renders a Core expression with type annotations — the demo's
// "output of type-annotated XQuery Core expression equivalents".
func Print(e Expr) string {
	var sb strings.Builder
	printInto(&sb, e, 0)
	return sb.String()
}

func printInto(sb *strings.Builder, e Expr, ind int) {
	pad := strings.Repeat("  ", ind)
	ann := func(head string) {
		fmt.Fprintf(sb, "%s%s  (: %s :)\n", pad, head, e.Ty())
	}
	switch x := e.(type) {
	case *Lit:
		ann(fmt.Sprintf("lit %s", x.Val.StringValue()))
	case *Empty:
		ann("()")
	case *Seq:
		ann("seq")
		printInto(sb, x.L, ind+1)
		printInto(sb, x.R, ind+1)
	case *Var:
		ann("$" + x.Name)
	case *Let:
		ann("let $" + x.Var + " :=")
		printInto(sb, x.Bound, ind+1)
		fmt.Fprintf(sb, "%sreturn\n", pad)
		printInto(sb, x.Body, ind+1)
	case *For:
		head := "for $" + x.Var
		if x.PosVar != "" {
			head += " at $" + x.PosVar
		}
		ann(head + " in")
		printInto(sb, x.In, ind+1)
		for _, k := range x.Order {
			dir := "ascending"
			if k.Desc {
				dir = "descending"
			}
			fmt.Fprintf(sb, "%sorder by (%s)\n", pad, dir)
			printInto(sb, k.Key, ind+1)
		}
		fmt.Fprintf(sb, "%sreturn\n", pad)
		printInto(sb, x.Body, ind+1)
	case *If:
		ann("if")
		printInto(sb, x.Cond, ind+1)
		fmt.Fprintf(sb, "%sthen\n", pad)
		printInto(sb, x.Then, ind+1)
		fmt.Fprintf(sb, "%selse\n", pad)
		printInto(sb, x.Else, ind+1)
	case *BinOp:
		ann("op " + x.Op)
		printInto(sb, x.L, ind+1)
		printInto(sb, x.R, ind+1)
	case *GenCmp:
		ann("some-cmp " + x.Op)
		printInto(sb, x.L, ind+1)
		printInto(sb, x.R, ind+1)
	case *NodeCmp:
		ann("node-cmp " + x.Op)
		printInto(sb, x.L, ind+1)
		printInto(sb, x.R, ind+1)
	case *Ebv:
		ann("fn:boolean")
		printInto(sb, x.X, ind+1)
	case *StepEx:
		ann(fmt.Sprintf("step %s::%s", x.Axis, x.Test))
		printInto(sb, x.In, ind+1)
	case *DDO:
		ann("fs:distinct-doc-order")
		printInto(sb, x.X, ind+1)
	case *Doc:
		ann("fn:doc")
		printInto(sb, x.X, ind+1)
	case *Coll:
		ann("fn:collection")
		printInto(sb, x.X, ind+1)
	case *Root:
		ann("fn:root")
		printInto(sb, x.X, ind+1)
	case *Data:
		ann("fn:data")
		printInto(sb, x.X, ind+1)
	case *ElemC:
		ann("element")
		printInto(sb, x.Name, ind+1)
		printInto(sb, x.Content, ind+1)
	case *AttrC:
		ann("attribute")
		printInto(sb, x.Name, ind+1)
		printInto(sb, x.Value, ind+1)
	case *TextC:
		ann("text")
		printInto(sb, x.Content, ind+1)
	case *InstanceOf:
		occ := ""
		if x.Occ != 0 {
			occ = string(x.Occ)
		}
		name := ""
		if x.OfName != "" {
			name = "(" + x.OfName + ")"
		}
		ann(fmt.Sprintf("instance of %s%s%s", x.Of, name, occ))
		printInto(sb, x.X, ind+1)
	case *Call:
		ann("fn:" + x.Name)
		for _, a := range x.Args {
			printInto(sb, a, ind+1)
		}
	case *PosFilter:
		if x.Last {
			ann("[last()]")
		} else {
			ann(fmt.Sprintf("[%d]", x.Nth))
		}
		printInto(sb, x.In, ind+1)
	default:
		ann(fmt.Sprintf("?%T", e))
	}
}
