package xqcore

import (
	"testing"

	"pathfinder/internal/xquery"
)

// FuzzNormalize pushes arbitrary (parseable) input through normalization:
// it must either produce a typed Core expression or a regular error, never
// panic.
func FuzzNormalize(f *testing.F) {
	seeds := []string{
		`for $v in (10,20) return $v + 100`,
		`//a[. = "x"][1][last()]`,
		`typeswitch ((1,2)) case $n as xs:integer+ return $n default $d return $d`,
		`declare function local:f($x) { local:g($x) };
		 declare function local:g($x) { $x }; local:f(1)`,
		`for $a in (1,2) let $n := $a order by $n, -$n descending return <x v="{$n}"/>`,
		`some $x in //a, $y in //b satisfies $x << $y`,
		`substring(string((1,2)), 1 to 3)`,
		`$unbound`, `position()`, `/a`, `.`,
		`element {()} { attribute {()} {()} }`,
		`count(1,2)`, `frobnicate()`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := xquery.Parse(src)
		if err != nil {
			return
		}
		e, err := Normalize(q, Options{ContextDoc: "fuzz.xml"})
		if err == nil && e == nil {
			t.Fatal("nil core expression without error")
		}
		if err == nil {
			// The printer must handle whatever normalization produced.
			if Print(e) == "" {
				t.Fatal("empty annotated core print")
			}
		}
	})
}
