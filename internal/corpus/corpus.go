// Package corpus holds the shared test corpora: the Table 2 dialect
// queries (one per supported construct, plus the extended-dialect forms
// the XMark workload needs) and the miniature auction document they run
// against. The engine differential tests, the service-path differential
// tests, and any future front end all difference against the same set, so
// a dialect regression fails every tier identically.
package corpus

// AuctionDoc mirrors the miniature XMark-shaped document the compiler
// tests use, so the dialect corpus exercises realistic shapes.
const AuctionDoc = `<site>
 <people>
  <person id="p1"><name>Alice</name><income>50000</income></person>
  <person id="p2"><name>Bob</name></person>
  <person id="p3"><name>Carol</name><income>90000</income></person>
 </people>
 <open_auctions>
  <open_auction id="a1"><seller person="p1"/><bidder><increase>5</increase></bidder><bidder><increase>20</increase></bidder><current>25</current></open_auction>
  <open_auction id="a2"><seller person="p3"/><current>7</current></open_auction>
 </open_auctions>
 <closed_auctions>
  <closed_auction><buyer person="p1"/><price>40</price></closed_auction>
  <closed_auction><buyer person="p1"/><price>60</price></closed_auction>
  <closed_auction><buyer person="p2"/><price>10</price></closed_auction>
 </closed_auctions>
</site>`

// Dialect is the Table 2 corpus: the XQuery dialect Pathfinder supports,
// one query per construct, expected to run against AuctionDoc loaded as
// "auction.xml" with the context document bound to it.
var Dialect = []string{
	// Table 2: XQuery dialect supported by Pathfinder
	`42`,
	`(1, 2)`,
	`let $v := 7 return $v`,
	`let $v := 3 return $v * $v`,
	`for $v in (1,2) return $v + 1`,
	`if (1 < 2) then "a" else "b"`,
	`typeswitch (1.5) case xs:integer return "i" case xs:double return "d" default return "?"`,
	`element {"x"} {"y"}`,
	`text {"z"}`,
	`for $x in (3,1,2) order by $x return $x`,
	`count(/site/child::people/descendant::name)`,
	`(//person)[1] << (//person)[2]`,
	`(//person)[1] is (//person)[1]`,
	`1 + 2 * 3 - 4`,
	`2 lt 3`,
	`1 = 1 and not(2 = 3)`,
	`count(doc("auction.xml"))`,
	`count(root((//name)[1]))`,
	`data((//income)[1]) + 0`,
	`count(fs:distinct-doc-order((//person, //person)))`,
	`count(//person)`,
	`sum((1, 2, 3))`,
	`empty(())`,
	`for $x in ("a","b") return position()`,
	`for $x in ("a","b") return last()`,
	`declare function local:sq($x) { $x * $x }; local:sq(5)`,
	// extended dialect
	`for $i in 1 to 4 return $i`,
	`count(//person | //price)`,
	`count((//person, //price) intersect //price)`,
	`count((//person, //price) except //price)`,
	`distinct-values((3, 1, 3, 2, 1))`,
	`substring("motor car", 6)`,
	`substring("metadata", 4, 3)`,
	`name((//person)[1])`,
	`name((//person)[1]/@id)`,
	`some $x in (1,2) satisfies $x = 2`,
	`every $x in (1,2) satisfies $x = 2`,
	`string-join(("a","b","c"), "+")`,
	`(//person)[2]/name/text()`,
	`//person[@id = "p3"]/name/text()`,
	`for $x at $i in ("a","b") return $i`,
	// joins and constructors, where the plans fan widest
	`for $p in //person
	 return count(for $t in doc("auction.xml")/site/closed_auctions/closed_auction
	        where $t/buyer/@person = $p/@id return $t)`,
	`for $p in //person order by $p/income return string($p/@id)`,
	`for $i in (1,2) return <n v="{$i}"/>`,
	`<out>{//person[1]/name}</out>`,
}
