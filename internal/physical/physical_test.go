package physical

import (
	"strings"
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
)

func mustOp(o *algebra.Op, err error) *algebra.Op {
	if err != nil {
		panic(err)
	}
	return o
}

func sortedLit(col string, vals ...int64) *algebra.Op {
	return algebra.Lit(bat.MustTable(col, bat.IntVec(vals)))
}

func kernelOf(t *testing.T, root *algebra.Op) *Node {
	t.Helper()
	p := Lower(root)
	if p.Root.Op != root {
		t.Fatalf("plan root is not the logical root")
	}
	return p.Root
}

// Property-driven kernel selection: the lowering pass must pick the merge
// kernel exactly when the optimizer proves both inputs sorted on the key.
func TestLowerJoinKernelSelection(t *testing.T) {
	sortedL := sortedLit("k", 1, 2, 3)
	sortedR := mustOp(algebra.Project(sortedLit("k", 1, 2, 2, 5), "j:k"))
	unsorted := algebra.Lit(bat.MustTable("j", bat.IntVec{3, 1, 2}))

	nd := kernelOf(t, mustOp(algebra.Join(sortedL, sortedR, []string{"k"}, []string{"j"})))
	if !nd.Merge || nd.Kernel != "merge-join" {
		t.Errorf("sorted ⋈ sorted: kernel = %q, merge = %v", nd.Kernel, nd.Merge)
	}

	nd = kernelOf(t, mustOp(algebra.Join(sortedL, unsorted, []string{"k"}, []string{"j"})))
	if nd.Merge || nd.Kernel != "hash-join" {
		t.Errorf("sorted ⋈ unsorted: kernel = %q, merge = %v", nd.Kernel, nd.Merge)
	}

	nd = kernelOf(t, mustOp(algebra.SemiJoin(sortedL, sortedR, []string{"k"}, []string{"j"})))
	if !nd.Merge || nd.Kernel != "merge-semijoin" || !nd.Pipeline {
		t.Errorf("sorted ⋉ sorted: kernel = %q, merge = %v, pipeline = %v",
			nd.Kernel, nd.Merge, nd.Pipeline)
	}

	// Multi-column keys never merge (the kernel is single-key).
	two := algebra.Lit(bat.MustTable("a", bat.IntVec{1, 2}, "b", bat.IntVec{1, 2}))
	twoR := mustOp(algebra.Project(two, "c:a", "d:b"))
	nd = kernelOf(t, mustOp(algebra.Join(two, twoR, []string{"a", "b"}, []string{"c", "d"})))
	if nd.Merge {
		t.Errorf("multi-key join must not merge: %q", nd.Kernel)
	}
}

// Dense-partition ϱ lowers to the constant-1 kernel: mark emits 1..n, so
// numbering per mark partition is constant 1 — no sort, no scan.
func TestLowerRowNumKernelSelection(t *testing.T) {
	base := algebra.Lit(bat.MustTable("item", bat.IntVec{7, 9, 8}))
	marked := mustOp(algebra.RowID(base, "inner"))

	nd := kernelOf(t, mustOp(algebra.RowNum(marked, "pos", nil, "inner")))
	if !nd.Const1 || nd.Kernel != "rownum[const1]" {
		t.Errorf("dense partition: kernel = %q, const1 = %v", nd.Kernel, nd.Const1)
	}

	// Sorted input, no partition: presorted numbering.
	sorted := sortedLit("iter", 1, 1, 2)
	nd = kernelOf(t, mustOp(algebra.RowNum(sorted, "pos",
		[]algebra.OrderSpec{{Col: "iter"}}, "")))
	if !nd.Presorted || nd.Kernel != "rownum[presorted]" {
		t.Errorf("sorted input: kernel = %q, presorted = %v", nd.Kernel, nd.Presorted)
	}

	// Unsorted order column: full sort kernel.
	unsorted := algebra.Lit(bat.MustTable("x", bat.IntVec{3, 1, 2}))
	nd = kernelOf(t, mustOp(algebra.RowNum(unsorted, "pos",
		[]algebra.OrderSpec{{Col: "x"}}, "")))
	if nd.Const1 || nd.Presorted || nd.Kernel != "rownum[sort]" {
		t.Errorf("unsorted input: kernel = %q", nd.Kernel)
	}

	// Descending order never counts as presorted.
	nd = kernelOf(t, mustOp(algebra.RowNum(sorted, "pos",
		[]algebra.OrderSpec{{Col: "iter", Desc: true}}, "")))
	if nd.Presorted {
		t.Errorf("descending order lowered to presorted kernel")
	}
}

func TestLowerPipelineFlags(t *testing.T) {
	lit := sortedLit("k", 1, 2, 3)
	pipeline := map[string]*algebra.Op{
		"filter":  mustOp(algebra.Select(mustOp(algebra.Fun(lit, "b", algebra.FunEq, "k", "k")), "b")),
		"project": mustOp(algebra.Project(lit, "x:k")),
		"mark":    mustOp(algebra.RowID(lit, "m")),
	}
	for name, root := range pipeline {
		nd := kernelOf(t, root)
		if !nd.Pipeline {
			t.Errorf("%s must be a pipeline operator", name)
		}
		if !strings.HasPrefix(nd.Kernel, name) {
			t.Errorf("%s kernel = %q", name, nd.Kernel)
		}
	}
	breakers := map[string]*algebra.Op{
		"distinct": algebra.Distinct(lit),
		"concat":   mustOp(algebra.Union(lit, lit)),
	}
	for name, root := range breakers {
		nd := kernelOf(t, root)
		if nd.Pipeline {
			t.Errorf("%s must be a breaker", name)
		}
	}
}

// The Parallel flag follows kernel shape and static cardinality: tiny
// literal-rooted inputs keep the sequential fast path, unknown-size
// inputs (anything downstream of a step) may go morsel-parallel.
func TestLowerParallelFlag(t *testing.T) {
	tiny := sortedLit("k", 1, 2, 3)
	big := algebra.Lit(bat.MustTable("k", bat.Ramp(1, 2*ParallelMinRows)))

	// Known-tiny input: sequential fast path.
	nd := kernelOf(t, mustOp(algebra.Fun(tiny, "b", algebra.FunEq, "k", "k")))
	if nd.Parallel {
		t.Errorf("map over %d known rows must not be parallel", 3)
	}
	if nd.EstRows != 3 {
		t.Errorf("map est = %d, want 3", nd.EstRows)
	}

	// Large known input: morsel-parallel.
	nd = kernelOf(t, mustOp(algebra.Fun(big, "b", algebra.FunEq, "k", "k")))
	if !nd.Parallel {
		t.Errorf("map over %d known rows must be parallel", 2*ParallelMinRows)
	}

	// Steps have data-dependent fan-out: est unknown, flag set — the
	// runtime morsel count decides.
	doc := mustOp(algebra.Fun(big, "s", algebra.FunString, "k"))
	step := mustOp(algebra.Step(mustOp(algebra.Project(
		algebra.Lit(bat.MustTable("iter", bat.IntVec{1}, "item", bat.NodeVec{{}})),
		"iter", "item")), algebra.Descendant, algebra.KindTest{Kind: algebra.TestNode}))
	_ = doc
	ndStep := kernelOf(t, step)
	if ndStep.EstRows != -1 || !ndStep.Parallel {
		t.Errorf("step: est = %d, parallel = %v; want -1, true", ndStep.EstRows, ndStep.Parallel)
	}
	// Downstream of the step the estimate stays unknown, so a filter
	// there is parallel even though the document might be small.
	sel := mustOp(algebra.Select(mustOp(algebra.Fun(step, "b", algebra.FunEq, "iter", "iter")), "b"))
	if nd := kernelOf(t, sel); !nd.Parallel || nd.EstRows != -1 {
		t.Errorf("filter below step: est = %d, parallel = %v; want -1, true", nd.EstRows, nd.Parallel)
	}

	// Merge joins are single ordered scans — never parallel; the same
	// join shape over unsorted inputs hashes and parallelizes.
	bigR := mustOp(algebra.Project(big, "j:k"))
	if nd := kernelOf(t, mustOp(algebra.Join(big, bigR, []string{"k"}, []string{"j"}))); nd.Parallel || !nd.Merge {
		t.Errorf("merge join: parallel = %v, merge = %v", nd.Parallel, nd.Merge)
	}
	unsorted := algebra.Lit(bat.MustTable("j", append(bat.IntVec{2, 1}, bat.Ramp(3, 2*ParallelMinRows)...)))
	if nd := kernelOf(t, mustOp(algebra.Join(big, unsorted, []string{"k"}, []string{"j"}))); !nd.Parallel || nd.Merge {
		t.Errorf("hash join: parallel = %v, merge = %v", nd.Parallel, nd.Merge)
	}

	// Scalar aggregates are a single fold (float summation order);
	// partitioned aggregation groups per morsel and merges.
	if nd := kernelOf(t, mustOp(algebra.Aggr(big, "s", algebra.AggSum, "k", ""))); nd.Parallel || nd.EstRows != 1 {
		t.Errorf("scalar aggr: parallel = %v, est = %d", nd.Parallel, nd.EstRows)
	}
	if nd := kernelOf(t, mustOp(algebra.Aggr(big, "s", algebra.AggSum, "k", "k"))); !nd.Parallel {
		t.Errorf("partitioned aggr over large input must be parallel")
	}
}

// Shared logical subplans must lower to shared physical nodes, keeping
// the exactly-once evaluation guarantee.
func TestLowerPreservesSharing(t *testing.T) {
	shared := sortedLit("k", 1, 2)
	a := mustOp(algebra.Project(shared, "x:k"))
	b := mustOp(algebra.Project(shared, "y:k"))
	j := mustOp(algebra.Join(a, b, []string{"x"}, []string{"y"}))
	p := Lower(j)
	if len(p.Nodes) != algebra.CountOps(j) {
		t.Fatalf("%d physical nodes for %d logical ops", len(p.Nodes), algebra.CountOps(j))
	}
	if p.ByOp[a].In[0] != p.ByOp[b].In[0] {
		t.Error("shared logical input lowered to distinct physical nodes")
	}
}
