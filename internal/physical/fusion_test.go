package physical

import (
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
)

// bigLit builds a literal wide enough to clear the FusedMinRows gate,
// with an integer column and a shifted copy for building predicates.
func bigLit(n int) *algebra.Op {
	a := make(bat.IntVec, n)
	b := make(bat.IntVec, n)
	for i := range a {
		a[i] = int64(i)
		b[i] = int64(i) + 1
	}
	return algebra.Lit(bat.MustTable("a", a, "b", b))
}

// chainKinds flattens a chain to its member operator kinds.
func chainKinds(ch *FusedChain) []algebra.OpKind {
	kinds := make([]algebra.OpKind, len(ch.Nodes))
	for i, nd := range ch.Nodes {
		kinds[i] = nd.Op.Kind
	}
	return kinds
}

// TestDiscoverChains: a map→filter→project pipeline over a large input
// becomes one maximal chain; the literal leaf stays outside it.
func TestDiscoverChains(t *testing.T) {
	fn := mustOp(algebra.Fun(bigLit(FusedMinRows+100), "p", algebra.FunLt, "a", "b"))
	sel := mustOp(algebra.Select(fn, "p"))
	pj := mustOp(algebra.Project(sel, "a"))
	p := Lower(pj)
	if len(p.Chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(p.Chains))
	}
	ch := p.Chains[0]
	want := []algebra.OpKind{algebra.OpFun, algebra.OpSelect, algebra.OpProject}
	got := chainKinds(ch)
	if len(got) != len(want) {
		t.Fatalf("chain kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chain kinds = %v, want %v", got, want)
		}
	}
	if ch.Input().Op.Kind != algebra.OpLit {
		t.Errorf("chain input = %s, want the literal leaf", ch.Input().Op.Kind)
	}
	if ch.Head().Op != fn {
		t.Errorf("chain head is not the map node")
	}
	if ch.Tail().Op != pj {
		t.Errorf("chain tail is not the projection")
	}
}

// TestDiscoverChainsTinyGate: the identical plan shape over a
// statically tiny input forms no chains at all — the point-lookup fast
// path must pay zero fusion overhead.
func TestDiscoverChainsTinyGate(t *testing.T) {
	fn := mustOp(algebra.Fun(bigLit(10), "p", algebra.FunLt, "a", "b"))
	sel := mustOp(algebra.Select(fn, "p"))
	pj := mustOp(algebra.Project(sel, "a"))
	p := Lower(pj)
	if len(p.Chains) != 0 {
		t.Fatalf("tiny input formed %d chain(s); the EstRows gate must skip them", len(p.Chains))
	}
	if nd := p.ByOp[fn]; nd.EstRows < 0 || nd.EstRows >= FusedMinRows {
		t.Fatalf("test premise broken: head EstRows = %d, want a small static bound", nd.EstRows)
	}
}

// TestDiscoverChainsMarkAfterFilter: a mark consuming a filter must not
// join the filter's chain — fused mark numbers rows by chain-input
// position, which a preceding filter disturbs. Mark before the filter
// fuses fine.
func TestDiscoverChainsMarkAfterFilter(t *testing.T) {
	fn := mustOp(algebra.Fun(bigLit(FusedMinRows+100), "p", algebra.FunLt, "a", "b"))
	sel := mustOp(algebra.Select(fn, "p"))
	mk := mustOp(algebra.RowID(sel, "pos"))
	pj := mustOp(algebra.Project(mk, "a", "pos"))
	p := Lower(pj)
	for _, ch := range p.Chains {
		seenFilter := false
		for _, nd := range ch.Nodes {
			if nd.Op.Kind == algebra.OpRowID && seenFilter {
				t.Fatalf("chain #%d places mark after a filter: %v", ch.ID, chainKinds(ch))
			}
			if nd.Op.Kind == algebra.OpSelect {
				seenFilter = true
			}
		}
	}

	// mark → filter (mark first) is a legal chain.
	mk2 := mustOp(algebra.RowID(bigLit(FusedMinRows+100), "pos"))
	fn2 := mustOp(algebra.Fun(mk2, "p", algebra.FunLt, "a", "b"))
	sel2 := mustOp(algebra.Select(fn2, "p"))
	p2 := Lower(sel2)
	if len(p2.Chains) != 1 || len(p2.Chains[0].Nodes) != 3 {
		t.Fatalf("mark→map→filter did not form one 3-member chain: %d chain(s)", len(p2.Chains))
	}
}

// TestDiscoverChainsMultiConsumer: a node with two consumers ends its
// chain — the selection vector must never leak to the second consumer.
func TestDiscoverChainsMultiConsumer(t *testing.T) {
	fn := mustOp(algebra.Fun(bigLit(FusedMinRows+100), "p", algebra.FunLt, "a", "b"))
	p1 := mustOp(algebra.Project(fn, "a"))
	p2 := mustOp(algebra.Project(fn, "a"))
	u := mustOp(algebra.Union(p1, p2))
	p := Lower(u)
	for _, ch := range p.Chains {
		for i, nd := range ch.Nodes[:len(ch.Nodes)-1] {
			if nd.Op == fn {
				t.Fatalf("chain #%d holds the shared map as interior member %d", ch.ID, i)
			}
		}
	}
}
