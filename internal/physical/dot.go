package physical

import (
	"fmt"
	"strings"
)

// Dot renders the physical plan in Graphviz syntax, parallel to
// algebra.Dot for logical plans: each node shows the logical operator,
// the chosen kernel, and the inferred order/denseness properties.
// Pipeline operators are drawn with rounded corners, breakers
// (materializing operators) as plain boxes. Members of a fused chain
// are grouped into a cluster subgraph labeled with the chain id, so the
// single-pass execution units are visible in the rendered plan.
func Dot(p *Plan) string {
	ids := make(map[*Node]int, len(p.Nodes))
	chainOf := make(map[*Node]*FusedChain)
	for _, ch := range p.Chains {
		for _, nd := range ch.Nodes {
			chainOf[nd] = ch
		}
	}
	var sb strings.Builder
	sb.WriteString("digraph physical {\n  node [shape=box, fontname=\"monospace\"];\n")
	nodeDecl := func(i int, nd *Node, indent string) {
		lines := []string{escape(nd.Op.Label()), escape(nd.Kernel)}
		if note := nd.PropsNote(); note != "" {
			lines = append(lines, escape(note))
		}
		style := ""
		if nd.Pipeline {
			style = ", style=rounded"
		}
		fmt.Fprintf(&sb, "%sn%d [label=\"%s\"%s];\n", indent, i, strings.Join(lines, `\n`), style)
	}
	for i, nd := range p.Nodes {
		ids[nd] = i
	}
	for i, nd := range p.Nodes {
		if ch := chainOf[nd]; ch != nil {
			// Declared inside its chain's cluster below; declare the
			// cluster when we reach the head so declaration order stays
			// topological.
			if nd != ch.Head() {
				continue
			}
			fmt.Fprintf(&sb, "  subgraph cluster_fused_%d {\n    label=\"fused chain #%d\";\n    style=dashed;\n", ch.ID, ch.ID)
			for _, m := range ch.Nodes {
				nodeDecl(ids[m], m, "    ")
			}
			sb.WriteString("  }\n")
			continue
		}
		nodeDecl(i, nd, "  ")
	}
	for _, nd := range p.Nodes {
		for k, in := range nd.In {
			fmt.Fprintf(&sb, "  n%d -> n%d [label=\"%d\"];\n", ids[nd], ids[in], k)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// escape quotes the characters Graphviz treats specially inside a
// double-quoted label.
func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
