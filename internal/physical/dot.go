package physical

import (
	"fmt"
	"strings"
)

// Dot renders the physical plan in Graphviz syntax, parallel to
// algebra.Dot for logical plans: each node shows the logical operator,
// the chosen kernel, and the inferred order/denseness properties.
// Pipeline operators are drawn with rounded corners, breakers
// (materializing operators) as plain boxes.
func Dot(p *Plan) string {
	ids := make(map[*Node]int, len(p.Nodes))
	var sb strings.Builder
	sb.WriteString("digraph physical {\n  node [shape=box, fontname=\"monospace\"];\n")
	for i, nd := range p.Nodes {
		ids[nd] = i
		lines := []string{escape(nd.Op.Label()), escape(nd.Kernel)}
		if note := nd.PropsNote(); note != "" {
			lines = append(lines, escape(note))
		}
		style := ""
		if nd.Pipeline {
			style = ", style=rounded"
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%s\"%s];\n", i, strings.Join(lines, `\n`), style)
	}
	for _, nd := range p.Nodes {
		for k, in := range nd.In {
			fmt.Fprintf(&sb, "  n%d -> n%d [label=\"%d\"];\n", ids[nd], ids[in], k)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// escape quotes the characters Graphviz treats specially inside a
// double-quoted label.
func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
