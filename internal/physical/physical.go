// Package physical lowers the logical algebra DAG (internal/algebra) into
// a physical plan of typed operator kernels. The lowering pass consults
// the optimizer's order/denseness properties (internal/opt) to choose the
// kernel for each operator statically — merge join when both inputs are
// sorted on the key, hash join otherwise; a constant or presorted fast
// path for ϱ when the partition column is dense or the input is already
// in numbering order — and classifies operators as pipeline (their output
// is a selection vector over a shared base table, never materialized) or
// breakers (their output is a standalone table). internal/engine executes
// the physical plan; the lowering is 1:1 per logical operator, so the
// engine's DAG memoization and the parallel scheduler carry over
// unchanged.
package physical

import (
	"strings"

	"pathfinder/internal/algebra"
	"pathfinder/internal/opt"
)

// Node is one physical operator: the logical operator it implements, the
// statically chosen kernel, and the lowering decisions the executor acts
// on. The executor may refine the kernel at runtime (e.g. a hash join
// discovers both key columns are typed int vectors); the refinement is
// reported through the evaluation trace, not here.
type Node struct {
	Op     *algebra.Op
	In     []*Node
	Kernel string // statically chosen kernel name

	// Merge marks a join/semijoin lowered to the merge kernel: both
	// inputs are statically sorted on the (single) key column.
	Merge bool
	// Presorted marks a ϱ whose input is statically in (partition,
	// order...) order, so the sort and the runtime sortedness scan are
	// both skipped.
	Presorted bool
	// Const1 marks a ϱ whose partition column is dense (1..n): every
	// partition is a singleton and the numbering is constant 1.
	Const1 bool
	// Pipeline marks operators whose output stays a view — a selection
	// vector or cheap column extension over shared base vectors — rather
	// than a materialized table.
	Pipeline bool
	// Parallel marks operators the executor may run morsel-wise on the
	// shared worker pool: their kernel admits an order-preserving
	// decomposition (per-morsel output buffers stitched in input order,
	// or per-worker partitions merged on a final pass) and the input is
	// not statically known to be tiny. The executor still keeps the
	// sequential fast path when the runtime row count yields fewer than
	// two morsels.
	Parallel bool
	// EstRows is the statically estimated output cardinality (an upper
	// bound derived from literal table sizes); -1 when unknown — any
	// operator downstream of a location step, whose fan-out the lowering
	// pass cannot see.
	EstRows int64

	// Props are the inferred order/denseness properties of this
	// operator's output, carried along for plan rendering.
	Props opt.Props
}

// Plan is a lowered physical plan: nodes in bottom-up topological order
// (children before parents, root last), one node per distinct logical
// operator.
type Plan struct {
	Root  *Node
	Nodes []*Node
	ByOp  map[*algebra.Op]*Node

	// Chains are the maximal fusable operator chains (see fusion.go) in
	// discovery order. They are executor metadata, not a rewrite: every
	// member node is still in Nodes, and ignoring Chains executes the
	// identical plan operator by operator.
	Chains []*FusedChain
}

// EstCost is the admission controller's memory proxy: the sum of the
// plan's estimated intermediate cardinalities across all operators.
// Operators with unknown cardinality (EstRows < 0 — anything downstream
// of a location step, range, or constructor) are charged unknownRows
// each, so a plan's cost grows with both its known materialization and
// the number of opaque fan-out points it contains. The absolute numbers
// are a pessimistic currency, not a prediction; admission only needs
// heavy join plans to price far above point lookups.
func (p *Plan) EstCost(unknownRows int64) int64 {
	var cost int64
	for _, nd := range p.Nodes {
		if nd.EstRows < 0 {
			cost += unknownRows
		} else {
			cost += nd.EstRows
		}
	}
	return cost
}

// Breakers counts the plan's pipeline breakers — operators whose output
// must be materialized as a fresh table rather than streamed as a view
// over shared base vectors. Fewer breakers is the physical payoff of
// join graph isolation: every rownum tower the optimizer removes takes
// its sort + materialization with it. Reported by `pf -show explain`
// and the plan benchmark.
func (p *Plan) Breakers() int {
	n := 0
	for _, nd := range p.Nodes {
		if !nd.Pipeline {
			n++
		}
	}
	return n
}

// Lower compiles the logical DAG rooted at root into a physical plan.
// Shared logical subplans become shared physical nodes, preserving the
// exactly-once evaluation guarantee.
func Lower(root *algebra.Op) *Plan {
	props := opt.Properties(root)
	order := algebra.Topo(root)
	byOp := make(map[*algebra.Op]*Node, len(order))
	nodes := make([]*Node, 0, len(order))
	for _, o := range order {
		nd := lowerOp(o, props, byOp)
		byOp[o] = nd
		nodes = append(nodes, nd)
	}
	p := &Plan{Root: byOp[root], Nodes: nodes, ByOp: byOp}
	p.Chains = discoverChains(p)
	return p
}

func lowerOp(o *algebra.Op, props map[*algebra.Op]opt.Props, byOp map[*algebra.Op]*Node) *Node {
	nd := &Node{Op: o, Props: props[o], In: make([]*Node, len(o.In))}
	for i, c := range o.In {
		nd.In[i] = byOp[c]
	}
	switch o.Kind {
	case algebra.OpLit:
		nd.Kernel = "scan"
	case algebra.OpProject:
		nd.Kernel, nd.Pipeline = "project", true
	case algebra.OpSelect:
		nd.Kernel, nd.Pipeline = "filter", true
	case algebra.OpUnion:
		nd.Kernel = "concat"
	case algebra.OpDiff:
		nd.Kernel, nd.Pipeline = "antijoin", true
	case algebra.OpDistinct:
		nd.Kernel = "distinct"
	case algebra.OpJoin, algebra.OpSemiJoin:
		name := "join"
		if o.Kind == algebra.OpSemiJoin {
			name, nd.Pipeline = "semijoin", true
		}
		// Merge kernel: a single key with both sides statically sorted
		// on it. (The executor additionally requires typed int keys —
		// the iter/mark columns loop-lifting joins on — and demotes to
		// hash otherwise, since only there do sort order and hash-key
		// equality provably coincide.)
		if len(o.KeyL) == 1 &&
			props[o.In[0]].SortedOn(o.KeyL[0]) &&
			props[o.In[1]].SortedOn(o.KeyR[0]) {
			nd.Merge = true
			nd.Kernel = "merge-" + name
		} else {
			nd.Kernel = "hash-" + name
		}
	case algebra.OpCross:
		nd.Kernel = "nested-product"
	case algebra.OpRowNum:
		in := props[o.In[0]]
		switch {
		case o.Part != "" && in.DenseOn(o.Part):
			// Dense partition column: every partition is a singleton,
			// the input is already in partition order, and the numbering
			// is the constant 1 — the paper's "ϱ is a no-cost operator"
			// observation in its strongest form.
			nd.Const1 = true
			nd.Kernel = "rownum[const1]"
		case rowNumPresorted(o, in):
			nd.Presorted = true
			nd.Kernel = "rownum[presorted]"
		default:
			nd.Kernel = "rownum[sort]"
		}
	case algebra.OpRowID:
		nd.Kernel, nd.Pipeline = "mark", true
	case algebra.OpFun:
		nd.Kernel, nd.Pipeline = "map["+o.Fun.String()+"]", true
	case algebra.OpAggr:
		nd.Kernel = "aggr[" + o.Agg.String() + "]"
	case algebra.OpStep:
		nd.Kernel = "staircase"
	case algebra.OpDoc:
		nd.Kernel, nd.Pipeline = "doc", true
	case algebra.OpRoots:
		nd.Kernel, nd.Pipeline = "roots", true
	case algebra.OpElem:
		nd.Kernel = "elem"
	case algebra.OpText:
		nd.Kernel = "text"
	case algebra.OpAttrC:
		nd.Kernel = "attr"
	case algebra.OpRange:
		nd.Kernel = "range"
	case algebra.OpColl:
		nd.Kernel = "collection"
	default:
		nd.Kernel = o.Kind.String()
	}
	nd.EstRows = estRows(o, nd)
	nd.Parallel = parallelizable(o, nd) && !statTiny(nd)
	return nd
}

// ParallelMinRows is the static cardinality gate: an operator whose
// inputs are all statically known to total fewer rows than this keeps
// the sequential fast path — splitting less than a morsel's worth of
// rows only buys synchronization overhead.
const ParallelMinRows = 4096

// parallelizable reports whether the operator's kernel admits an
// order-preserving morsel decomposition the executor implements.
func parallelizable(o *algebra.Op, nd *Node) bool {
	switch o.Kind {
	case algebra.OpSelect, algebra.OpFun, algebra.OpDiff,
		algebra.OpDistinct, algebra.OpStep:
		return true
	case algebra.OpJoin, algebra.OpSemiJoin:
		// The hash kernel parallelizes build and probe; the merge kernel
		// is a single ordered scan and stays sequential.
		return !nd.Merge
	case algebra.OpAggr:
		// Partitioned aggregation groups per morsel and merges; a scalar
		// aggregate is a single fold whose float summation order must not
		// change.
		return o.Part != ""
	}
	return false
}

// statTiny reports whether the operator is statically known to process
// less than a morsel's worth of rows. The node's own estimate is the
// right gate, not its inputs': a one-row doc reference feeding a
// location step expands to the whole document, so a step's work is
// bounded by its (unknown) output, never by its input.
func statTiny(nd *Node) bool {
	return nd.EstRows >= 0 && nd.EstRows < ParallelMinRows
}

// estRows propagates output-cardinality upper bounds bottom-up from
// literal table sizes. Location steps, ranges, and constructors have
// data-dependent fan-out the lowering pass cannot see; they (and
// anything downstream of them) report -1.
func estRows(o *algebra.Op, nd *Node) int64 {
	in := func(i int) int64 {
		if i >= len(nd.In) {
			return -1
		}
		return nd.In[i].EstRows
	}
	switch o.Kind {
	case algebra.OpLit:
		return int64(o.Lit.Rows())
	case algebra.OpProject, algebra.OpFun, algebra.OpRowNum, algebra.OpRowID,
		algebra.OpDoc, algebra.OpRoots, algebra.OpSelect, algebra.OpDistinct,
		algebra.OpSemiJoin, algebra.OpDiff:
		// Pass-through and filtering operators: the input size bounds the
		// output.
		return in(0)
	case algebra.OpUnion:
		l, r := in(0), in(1)
		if l < 0 || r < 0 {
			return -1
		}
		return l + r
	case algebra.OpCross, algebra.OpJoin:
		l, r := in(0), in(1)
		if l < 0 || r < 0 {
			return -1
		}
		if l > 0 && r > int64(1)<<40/l { // saturate instead of overflowing
			return int64(1) << 40
		}
		return l * r
	case algebra.OpAggr:
		if o.Part == "" {
			return 1
		}
		return in(0)
	}
	// OpStep, OpRange, OpColl, OpElem, OpText, OpAttrC: data-dependent
	// fan-out.
	return -1
}

// rowNumPresorted reports whether ϱ's input is statically guaranteed to
// already be in (partition, order...) order, all ascending.
func rowNumPresorted(o *algebra.Op, in opt.Props) bool {
	var need []string
	if o.Part != "" {
		need = append(need, o.Part)
	}
	for _, s := range o.Order {
		if s.Desc {
			return false
		}
		need = append(need, s.Col)
	}
	return in.SortedOn(need...)
}

// PropsNote renders the node's inferred properties compactly for plan
// displays; empty when nothing is known.
func (n *Node) PropsNote() string {
	var parts []string
	if len(n.Props.Sorted) > 0 {
		s := "sorted(" + strings.Join(n.Props.Sorted, ",") + ")"
		if n.Props.Strict {
			s = "key(" + strings.Join(n.Props.Sorted, ",") + ")"
		}
		parts = append(parts, s)
	}
	if len(n.Props.Dense) > 0 {
		parts = append(parts, "dense("+strings.Join(n.Props.Dense, ",")+")")
	}
	if n.Pipeline {
		parts = append(parts, "pipeline")
	}
	if n.Parallel {
		parts = append(parts, "parallel")
	}
	return strings.Join(parts, " ")
}
