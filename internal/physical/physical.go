// Package physical lowers the logical algebra DAG (internal/algebra) into
// a physical plan of typed operator kernels. The lowering pass consults
// the optimizer's order/denseness properties (internal/opt) to choose the
// kernel for each operator statically — merge join when both inputs are
// sorted on the key, hash join otherwise; a constant or presorted fast
// path for ϱ when the partition column is dense or the input is already
// in numbering order — and classifies operators as pipeline (their output
// is a selection vector over a shared base table, never materialized) or
// breakers (their output is a standalone table). internal/engine executes
// the physical plan; the lowering is 1:1 per logical operator, so the
// engine's DAG memoization and the parallel scheduler carry over
// unchanged.
package physical

import (
	"strings"

	"pathfinder/internal/algebra"
	"pathfinder/internal/opt"
)

// Node is one physical operator: the logical operator it implements, the
// statically chosen kernel, and the lowering decisions the executor acts
// on. The executor may refine the kernel at runtime (e.g. a hash join
// discovers both key columns are typed int vectors); the refinement is
// reported through the evaluation trace, not here.
type Node struct {
	Op     *algebra.Op
	In     []*Node
	Kernel string // statically chosen kernel name

	// Merge marks a join/semijoin lowered to the merge kernel: both
	// inputs are statically sorted on the (single) key column.
	Merge bool
	// Presorted marks a ϱ whose input is statically in (partition,
	// order...) order, so the sort and the runtime sortedness scan are
	// both skipped.
	Presorted bool
	// Const1 marks a ϱ whose partition column is dense (1..n): every
	// partition is a singleton and the numbering is constant 1.
	Const1 bool
	// Pipeline marks operators whose output stays a view — a selection
	// vector or cheap column extension over shared base vectors — rather
	// than a materialized table.
	Pipeline bool

	// Props are the inferred order/denseness properties of this
	// operator's output, carried along for plan rendering.
	Props opt.Props
}

// Plan is a lowered physical plan: nodes in bottom-up topological order
// (children before parents, root last), one node per distinct logical
// operator.
type Plan struct {
	Root  *Node
	Nodes []*Node
	ByOp  map[*algebra.Op]*Node
}

// Lower compiles the logical DAG rooted at root into a physical plan.
// Shared logical subplans become shared physical nodes, preserving the
// exactly-once evaluation guarantee.
func Lower(root *algebra.Op) *Plan {
	props := opt.Properties(root)
	order := algebra.Topo(root)
	byOp := make(map[*algebra.Op]*Node, len(order))
	nodes := make([]*Node, 0, len(order))
	for _, o := range order {
		nd := lowerOp(o, props, byOp)
		byOp[o] = nd
		nodes = append(nodes, nd)
	}
	return &Plan{Root: byOp[root], Nodes: nodes, ByOp: byOp}
}

func lowerOp(o *algebra.Op, props map[*algebra.Op]opt.Props, byOp map[*algebra.Op]*Node) *Node {
	nd := &Node{Op: o, Props: props[o], In: make([]*Node, len(o.In))}
	for i, c := range o.In {
		nd.In[i] = byOp[c]
	}
	switch o.Kind {
	case algebra.OpLit:
		nd.Kernel = "scan"
	case algebra.OpProject:
		nd.Kernel, nd.Pipeline = "project", true
	case algebra.OpSelect:
		nd.Kernel, nd.Pipeline = "filter", true
	case algebra.OpUnion:
		nd.Kernel = "concat"
	case algebra.OpDiff:
		nd.Kernel, nd.Pipeline = "antijoin", true
	case algebra.OpDistinct:
		nd.Kernel = "distinct"
	case algebra.OpJoin, algebra.OpSemiJoin:
		name := "join"
		if o.Kind == algebra.OpSemiJoin {
			name, nd.Pipeline = "semijoin", true
		}
		// Merge kernel: a single key with both sides statically sorted
		// on it. (The executor additionally requires typed int keys —
		// the iter/mark columns loop-lifting joins on — and demotes to
		// hash otherwise, since only there do sort order and hash-key
		// equality provably coincide.)
		if len(o.KeyL) == 1 &&
			props[o.In[0]].SortedOn(o.KeyL[0]) &&
			props[o.In[1]].SortedOn(o.KeyR[0]) {
			nd.Merge = true
			nd.Kernel = "merge-" + name
		} else {
			nd.Kernel = "hash-" + name
		}
	case algebra.OpCross:
		nd.Kernel = "nested-product"
	case algebra.OpRowNum:
		in := props[o.In[0]]
		switch {
		case o.Part != "" && in.DenseOn(o.Part):
			// Dense partition column: every partition is a singleton,
			// the input is already in partition order, and the numbering
			// is the constant 1 — the paper's "ϱ is a no-cost operator"
			// observation in its strongest form.
			nd.Const1 = true
			nd.Kernel = "rownum[const1]"
		case rowNumPresorted(o, in):
			nd.Presorted = true
			nd.Kernel = "rownum[presorted]"
		default:
			nd.Kernel = "rownum[sort]"
		}
	case algebra.OpRowID:
		nd.Kernel, nd.Pipeline = "mark", true
	case algebra.OpFun:
		nd.Kernel, nd.Pipeline = "map["+o.Fun.String()+"]", true
	case algebra.OpAggr:
		nd.Kernel = "aggr[" + o.Agg.String() + "]"
	case algebra.OpStep:
		nd.Kernel = "staircase"
	case algebra.OpDoc:
		nd.Kernel, nd.Pipeline = "doc", true
	case algebra.OpRoots:
		nd.Kernel, nd.Pipeline = "roots", true
	case algebra.OpElem:
		nd.Kernel = "elem"
	case algebra.OpText:
		nd.Kernel = "text"
	case algebra.OpAttrC:
		nd.Kernel = "attr"
	case algebra.OpRange:
		nd.Kernel = "range"
	default:
		nd.Kernel = o.Kind.String()
	}
	return nd
}

// rowNumPresorted reports whether ϱ's input is statically guaranteed to
// already be in (partition, order...) order, all ascending.
func rowNumPresorted(o *algebra.Op, in opt.Props) bool {
	var need []string
	if o.Part != "" {
		need = append(need, o.Part)
	}
	for _, s := range o.Order {
		if s.Desc {
			return false
		}
		need = append(need, s.Col)
	}
	return in.SortedOn(need...)
}

// PropsNote renders the node's inferred properties compactly for plan
// displays; empty when nothing is known.
func (n *Node) PropsNote() string {
	var parts []string
	if len(n.Props.Sorted) > 0 {
		s := "sorted(" + strings.Join(n.Props.Sorted, ",") + ")"
		if n.Props.Strict {
			s = "key(" + strings.Join(n.Props.Sorted, ",") + ")"
		}
		parts = append(parts, s)
	}
	if len(n.Props.Dense) > 0 {
		parts = append(parts, "dense("+strings.Join(n.Props.Dense, ",")+")")
	}
	if n.Pipeline {
		parts = append(parts, "pipeline")
	}
	return strings.Join(parts, " ")
}
