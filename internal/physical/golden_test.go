package physical_test

// Golden test for the physical plan rendering: the lowered plan of one
// XMark query (Q8, the big equijoin query — it exercises merge-join,
// presorted rownum, and the pipeline flags) is pinned byte-for-byte.
// Regenerate intentionally with:
//
//	go test ./internal/physical -run TestPhysicalDotGolden -update

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pathfinder/internal/core"
	"pathfinder/internal/opt"
	"pathfinder/internal/physical"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

var update = flag.Bool("update", false, "rewrite the golden file under testdata")

func TestPhysicalDotGolden(t *testing.T) {
	plan, _, err := core.CompileQuery(xmark.Query(8), xqcore.Options{ContextDoc: "xmark.xml"})
	if err != nil {
		t.Fatal(err)
	}
	if plan, err = opt.Optimize(plan); err != nil {
		t.Fatal(err)
	}
	got := physical.Dot(physical.Lower(plan))

	path := filepath.Join("testdata", "q08_physical.dot")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("physical plan rendering drifted from %s;\nrerun with -update if intentional", path)
	}
}
