package physical

import "pathfinder/internal/algebra"

// Pipeline fusion (the MonetDB→X100 evolution applied to our kernels):
// the loop-lifted plans are long chains of cheap per-row operators —
// filters, maps, projections, mark/rownum fast paths — and executing
// them one kernel at a time makes every link exchange a bat.View and
// pay a full-column gather whenever the previous link narrowed the
// selection. Lower identifies maximal chains of such operators and
// records them on the plan as FusedChain metadata; the executor runs a
// whole chain as a single loop over fixed-size vectors, carrying one
// selection vector from the chain's input to its boundary and
// materializing (at most) once.
//
// The chains are metadata, not a plan rewrite: every member keeps its
// Node (stats, Check, and the explain/dot output address members
// individually), and an executor that ignores Chains — or is told to
// via engine.Config{NoFusion} — runs the identical plan operator by
// operator. That keeps the plan cache shared between fused and unfused
// engines and makes -no-fusion a pure executor switch.

// FusedChain is one maximal fusable chain: Nodes[0] is the head (its
// data input is the chain's input), Nodes[len-1] the tail (its output is
// the chain's boundary). Interior members have exactly one consumer —
// the next member — so the selection vector threaded through the chain
// can never leak to an operator outside it.
type FusedChain struct {
	ID    int // 1-based, in discovery (= topological) order
	Nodes []*Node
}

// Head returns the chain's first member.
func (c *FusedChain) Head() *Node { return c.Nodes[0] }

// Tail returns the chain's last member; its output is the chain's.
func (c *FusedChain) Tail() *Node { return c.Nodes[len(c.Nodes)-1] }

// Input returns the node producing the chain's input relation.
func (c *FusedChain) Input() *Node { return c.Head().In[0] }

// Parallel reports whether any member admits morsel decomposition — the
// executor then makes the whole chain the morsel work unit.
func (c *FusedChain) Parallel() bool {
	for _, nd := range c.Nodes {
		if nd.Parallel {
			return true
		}
	}
	return false
}

// FusedMinRows is the static gate below which chain formation is
// skipped: a point lookup whose cardinality is known to be tiny must
// pay zero fusion overhead (no vector buffers, no selection-vector
// allocation), so tiny inputs keep the plain per-operator path. Reusing
// the morsel gate keeps "tiny" meaning one thing across the executor.
const FusedMinRows = ParallelMinRows

// fusable reports whether a node may be a fused-chain member: a pure
// unary per-row operator whose kernel reads input rows independently.
// σ and π always qualify; ⊛ (map) qualifies for every function — the
// executor falls back to per-operator execution for combinations its
// lane kernels cannot reproduce; ϱ only on its const-1 fast path (the
// sort and presorted kernels need the whole partition); the mark
// operator qualifies but is position-sensitive — see discoverChains.
func fusable(nd *Node) bool {
	switch nd.Op.Kind {
	case algebra.OpSelect, algebra.OpProject, algebra.OpFun, algebra.OpRowID:
		return true
	case algebra.OpRowNum:
		return nd.Const1
	}
	return false
}

// discoverChains finds the maximal fusable chains of a lowered plan.
// plan.Nodes is in bottom-up topological order, so a forward greedy walk
// from the first unclaimed fusable node always starts at the true head
// of its maximal chain. A chain grows from cur to its consumer next iff
//
//   - cur has exactly one consuming edge (otherwise the selection vector
//     threaded past cur would leak to an operator outside the chain),
//   - next is fusable and consumes cur as its data input, and
//   - next is not a mark (ϱ́) after a filter: mark numbers the rows it
//     sees 1..n, so its input positions must be undisturbed — a mark may
//     be followed by filters inside a chain, never preceded by one.
//
// Chains shorter than two members buy nothing, and chains whose head is
// statically known to process fewer than FusedMinRows rows are skipped
// outright (the tiny-input fast path).
func discoverChains(p *Plan) []*FusedChain {
	consumers := make(map[*Node]int, len(p.Nodes))
	nextOf := make(map[*Node]*Node, len(p.Nodes))
	for _, nd := range p.Nodes {
		for _, c := range nd.In {
			consumers[c]++
			nextOf[c] = nd
		}
	}
	claimed := make(map[*Node]bool)
	var chains []*FusedChain
	for _, nd := range p.Nodes {
		if claimed[nd] || !fusable(nd) || len(nd.In) != 1 {
			continue
		}
		if nd.EstRows >= 0 && nd.EstRows < FusedMinRows {
			continue
		}
		members := []*Node{nd}
		hasFilter := nd.Op.Kind == algebra.OpSelect
		cur := nd
		for consumers[cur] == 1 {
			next := nextOf[cur]
			if !fusable(next) || len(next.In) != 1 || next.In[0] != cur || claimed[next] {
				break
			}
			if next.Op.Kind == algebra.OpRowID && hasFilter {
				break
			}
			members = append(members, next)
			if next.Op.Kind == algebra.OpSelect {
				hasFilter = true
			}
			cur = next
		}
		if len(members) < 2 {
			continue
		}
		for _, m := range members {
			claimed[m] = true
		}
		chains = append(chains, &FusedChain{ID: len(chains) + 1, Nodes: members})
	}
	return chains
}
