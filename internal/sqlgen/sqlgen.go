// Package sqlgen renders Pathfinder's relational algebra plans as
// SQL:1999 — the "alternative back-ends (e.g. SQL)" the paper lists as
// work in progress (§2), following the translation scheme of [6],
// "XQuery on SQL Hosts". Every operator becomes a common table
// expression; row numbering maps onto the DENSE_RANK() window function
// the paper explicitly names; XPath steps, which have no staircase join
// on a stock SQL host, become the XPath Accelerator region predicates
// over the document encoding table.
//
// The emitted SQL targets a host with
//
//	doc(frag, pre, size, level, kind, prop, value)  -- shredded documents
//	att(frag, ref, owner, name, value)              -- attribute nodes
//
// where kind ∈ ('doc','elem','text','comment') and value carries tag
// names / text content resolved from the surrogate pools. Node items are
// encoded as (frag, pre) pairs packed into a BIGINT (frag*2^32+pre), the
// same trick the engine's hash keys use.
//
// Node constructors (ε, τ, attribute) have no counterpart in pure SQL —
// on SQL hosts they require host-language support — so plans containing
// them are rejected, exactly the restriction [6] documents.
package sqlgen

import (
	"fmt"
	"strings"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
)

// Emit renders the plan as one SQL:1999 statement with a WITH clause per
// operator. The final SELECT returns the iter|pos|item encoding ordered
// by (iter, pos).
func Emit(root *algebra.Op) (string, error) {
	e := &emitter{ids: map[*algebra.Op]int{}}
	id, err := e.emit(root)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("WITH\n")
	sb.WriteString(strings.Join(e.ctes, ",\n"))
	fmt.Fprintf(&sb, "\nSELECT * FROM q%d ORDER BY %s;\n", id, orderCols(root))
	return sb.String(), nil
}

func orderCols(root *algebra.Op) string {
	if root.HasCol("iter") && root.HasCol("pos") {
		return "iter, pos"
	}
	return "1"
}

type emitter struct {
	ids  map[*algebra.Op]int
	ctes []string
}

func (e *emitter) emit(o *algebra.Op) (int, error) {
	if id, ok := e.ids[o]; ok {
		return id, nil
	}
	ins := make([]int, len(o.In))
	for i, in := range o.In {
		id, err := e.emit(in)
		if err != nil {
			return 0, err
		}
		ins[i] = id
	}
	body, err := e.body(o, ins)
	if err != nil {
		return 0, err
	}
	id := len(e.ids)
	e.ids[o] = id
	e.ctes = append(e.ctes, fmt.Sprintf("  q%d(%s) AS (\n    %s\n  )",
		id, strings.Join(o.Schema(), ", "), body))
	return id, nil
}

func q(id int) string { return fmt.Sprintf("q%d", id) }

func (e *emitter) body(o *algebra.Op, in []int) (string, error) {
	switch o.Kind {
	case algebra.OpLit:
		return litValues(o.Lit)
	case algebra.OpProject:
		parts := make([]string, len(o.Proj))
		for i, p := range o.Proj {
			if p.New == p.Old {
				parts[i] = p.Old
			} else {
				parts[i] = p.Old + " AS " + p.New
			}
		}
		return fmt.Sprintf("SELECT %s FROM %s", strings.Join(parts, ", "), q(in[0])), nil
	case algebra.OpSelect:
		return fmt.Sprintf("SELECT * FROM %s WHERE %s", q(in[0]), o.Col), nil
	case algebra.OpUnion:
		// The algebra guarantees disjointness, so UNION ALL is exact.
		return fmt.Sprintf("SELECT %s FROM %s UNION ALL SELECT %s FROM %s",
			strings.Join(o.Schema(), ", "), q(in[0]),
			strings.Join(o.Schema(), ", "), q(in[1])), nil
	case algebra.OpDiff:
		return fmt.Sprintf("SELECT * FROM %s l WHERE NOT EXISTS (SELECT 1 FROM %s r WHERE %s)",
			q(in[0]), q(in[1]), keyPred(o)), nil
	case algebra.OpSemiJoin:
		return fmt.Sprintf("SELECT * FROM %s l WHERE EXISTS (SELECT 1 FROM %s r WHERE %s)",
			q(in[0]), q(in[1]), keyPred(o)), nil
	case algebra.OpDistinct:
		return fmt.Sprintf("SELECT DISTINCT * FROM %s", q(in[0])), nil
	case algebra.OpJoin:
		return fmt.Sprintf("SELECT l.*, r.* FROM %s l JOIN %s r ON %s",
			q(in[0]), q(in[1]), keyPred(o)), nil
	case algebra.OpCross:
		return fmt.Sprintf("SELECT l.*, r.* FROM %s l CROSS JOIN %s r",
			q(in[0]), q(in[1])), nil
	case algebra.OpRowNum:
		var ords []string
		for _, s := range o.Order {
			d := ""
			if s.Desc {
				d = " DESC"
			}
			ords = append(ords, s.Col+d)
		}
		over := ""
		if o.Part != "" {
			over = "PARTITION BY " + o.Part
		}
		if len(ords) > 0 {
			if over != "" {
				over += " "
			}
			over += "ORDER BY " + strings.Join(ords, ", ")
		}
		return fmt.Sprintf("SELECT *, DENSE_RANK() OVER (%s) AS %s FROM %s",
			over, o.Col, q(in[0])), nil
	case algebra.OpRowID:
		return fmt.Sprintf("SELECT *, ROW_NUMBER() OVER () AS %s FROM %s", o.Col, q(in[0])), nil
	case algebra.OpFun:
		expr, err := funExpr(o)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("SELECT *, %s AS %s FROM %s", expr, o.Col, q(in[0])), nil
	case algebra.OpAggr:
		agg, err := aggExpr(o)
		if err != nil {
			return "", err
		}
		if o.Part == "" {
			return fmt.Sprintf("SELECT %s AS %s FROM %s", agg, o.Col, q(in[0])), nil
		}
		return fmt.Sprintf("SELECT %s, %s AS %s FROM %s GROUP BY %s",
			o.Part, agg, o.Col, q(in[0]), o.Part), nil
	case algebra.OpStep:
		return stepSQL(o, in[0])
	case algebra.OpDoc:
		return fmt.Sprintf(
			"SELECT %s FROM %s c JOIN docs d ON d.uri = c.item",
			replaceItem(o.Schema(), "d.frag * 4294967296"), q(in[0])), nil
	case algebra.OpRoots:
		// fn:root: the level-0 ancestor within the node's fragment.
		return fmt.Sprintf(
			"SELECT %s FROM %s c JOIN doc r ON r.frag = c.item / 4294967296 "+
				"AND r.level = 0 AND r.pre <= (c.item %% 4294967296) "+
				"AND (c.item %% 4294967296) <= r.pre + r.size",
			replaceItem(o.Schema(), "r.frag * 4294967296 + r.pre"), q(in[0])), nil
	case algebra.OpRange:
		return fmt.Sprintf(
			"SELECT iter, g.n - %[1]s + 1 AS pos, g.n AS item FROM %[2]s "+
				"CROSS JOIN LATERAL generate_series(%[1]s, %[3]s) AS g(n)",
			o.KeyL[0], q(in[0]), o.KeyL[1]), nil
	case algebra.OpColl:
		// fn:collection: every document of the named collection, numbered
		// in manifest (load) order per input row.
		return fmt.Sprintf(
			"SELECT c.iter, d.ord AS pos, d.frag * 4294967296 AS item "+
				"FROM %s c JOIN coll_docs d ON d.coll = c.item ORDER BY c.iter, d.ord",
			q(in[0])), nil
	case algebra.OpElem, algebra.OpText, algebra.OpAttrC:
		return "", fmt.Errorf(
			"sqlgen: node constructor %s has no pure-SQL form (requires host support, cf. [6])", o.Kind)
	}
	return "", fmt.Errorf("sqlgen: unsupported operator %s", o.Kind)
}

func keyPred(o *algebra.Op) string {
	parts := make([]string, len(o.KeyL))
	for i := range o.KeyL {
		parts[i] = fmt.Sprintf("l.%s = r.%s", o.KeyL[i], o.KeyR[i])
	}
	return strings.Join(parts, " AND ")
}

// replaceItem renders a select list that passes the schema through with
// the item column substituted.
func replaceItem(schema []string, itemExpr string) string {
	parts := make([]string, len(schema))
	for i, c := range schema {
		if c == "item" {
			parts[i] = itemExpr + " AS item"
		} else {
			parts[i] = "c." + c
		}
	}
	return strings.Join(parts, ", ")
}

// stepSQL renders a location step as the XPath Accelerator region
// predicate of [4]: on a SQL host without the staircase join, each axis is
// a θ-join between the context and the document encoding.
func stepSQL(o *algebra.Op, ctx int) (string, error) {
	const (
		pre  = "(c.item % 4294967296)" // context pre rank
		frag = "(c.item / 4294967296)"
	)
	var region string
	switch o.Axis {
	case algebra.Child:
		region = fmt.Sprintf("d.pre > %s AND d.pre <= %s + c2.size AND d.level = c2.level + 1", pre, pre)
	case algebra.Descendant:
		region = fmt.Sprintf("d.pre > %s AND d.pre <= %s + c2.size", pre, pre)
	case algebra.DescendantOrSelf:
		region = fmt.Sprintf("d.pre >= %s AND d.pre <= %s + c2.size", pre, pre)
	case algebra.Parent:
		region = fmt.Sprintf("d.pre < %s AND %s <= d.pre + d.size AND d.level = c2.level - 1", pre, pre)
	case algebra.Ancestor:
		region = fmt.Sprintf("d.pre < %s AND %s <= d.pre + d.size", pre, pre)
	case algebra.AncestorOrSelf:
		region = fmt.Sprintf("d.pre <= %s AND %s <= d.pre + d.size", pre, pre)
	case algebra.Following:
		region = fmt.Sprintf("d.pre > %s + c2.size", pre)
	case algebra.Preceding:
		region = fmt.Sprintf("d.pre + d.size < %s", pre)
	case algebra.Self:
		region = fmt.Sprintf("d.pre = %s", pre)
	case algebra.FollowingSibling, algebra.PrecedingSibling:
		cmp := ">"
		if o.Axis == algebra.PrecedingSibling {
			cmp = "<"
		}
		region = fmt.Sprintf(
			"d.level = c2.level AND d.pre %s %s AND EXISTS (SELECT 1 FROM doc p "+
				"WHERE p.frag = d.frag AND p.pre < %s AND %s <= p.pre + p.size "+
				"AND p.level = c2.level - 1 AND d.pre <= p.pre + p.size AND d.pre > p.pre)",
			cmp, pre, pre, pre)
	case algebra.Attribute:
		test := ""
		if o.Test.Name != "" {
			test = fmt.Sprintf(" AND a.name = %s", sqlString(o.Test.Name))
		}
		return fmt.Sprintf(
			"SELECT DISTINCT c.iter, a.frag * 4294967296 + a.ref AS item "+
				"FROM %s c JOIN att a ON a.frag = %s AND a.owner = %s%s",
			q(ctx), frag, pre, test), nil
	default:
		return "", fmt.Errorf("sqlgen: unsupported axis %s", o.Axis)
	}
	var test string
	switch o.Test.Kind {
	case algebra.TestElem:
		test = " AND d.kind = 'elem'"
		if o.Test.Name != "" {
			test += " AND d.value = " + sqlString(o.Test.Name)
		}
	case algebra.TestText:
		test = " AND d.kind = 'text'"
	case algebra.TestComment:
		test = " AND d.kind = 'comment'"
	case algebra.TestNode:
	case algebra.TestAttr:
		return "", fmt.Errorf("sqlgen: attribute test on non-attribute axis")
	}
	return fmt.Sprintf(
		"SELECT DISTINCT c.iter, d.frag * 4294967296 + d.pre AS item "+
			"FROM %s c JOIN doc c2 ON c2.frag = %s AND c2.pre = %s "+
			"JOIN doc d ON d.frag = c2.frag AND %s%s",
		q(ctx), frag, pre, region, test), nil
}

func funExpr(o *algebra.Op) (string, error) {
	a := o.Args[0]
	b := ""
	if len(o.Args) > 1 {
		b = o.Args[1]
	}
	switch o.Fun {
	case algebra.FunAdd:
		return a + " + " + b, nil
	case algebra.FunSub:
		return a + " - " + b, nil
	case algebra.FunMul:
		return a + " * " + b, nil
	case algebra.FunDiv:
		return fmt.Sprintf("CAST(%s AS DOUBLE PRECISION) / %s", a, b), nil
	case algebra.FunIDiv:
		return fmt.Sprintf("CAST(%s / %s AS BIGINT)", a, b), nil
	case algebra.FunMod:
		return fmt.Sprintf("MOD(%s, %s)", a, b), nil
	case algebra.FunNeg:
		return "-" + a, nil
	case algebra.FunEq:
		return a + " = " + b, nil
	case algebra.FunNe:
		return a + " <> " + b, nil
	case algebra.FunLt:
		return a + " < " + b, nil
	case algebra.FunLe:
		return a + " <= " + b, nil
	case algebra.FunGt:
		return a + " > " + b, nil
	case algebra.FunGe:
		return a + " >= " + b, nil
	case algebra.FunAnd:
		return a + " AND " + b, nil
	case algebra.FunOr:
		return a + " OR " + b, nil
	case algebra.FunNot:
		return "NOT " + a, nil
	case algebra.FunConcat:
		return a + " || " + b, nil
	case algebra.FunContains:
		return fmt.Sprintf("POSITION(%s IN %s) > 0", b, a), nil
	case algebra.FunStartsWith:
		return fmt.Sprintf("POSITION(%s IN %s) = 1", b, a), nil
	case algebra.FunStringLength:
		return fmt.Sprintf("CHAR_LENGTH(%s)", a), nil
	case algebra.FunString:
		return fmt.Sprintf("CAST(%s AS VARCHAR)", a), nil
	case algebra.FunNumber:
		return fmt.Sprintf("CAST(%s AS DOUBLE PRECISION)", a), nil
	case algebra.FunSubstring:
		return fmt.Sprintf("SUBSTRING(%s FROM CAST(ROUND(%s) AS INT))", a, b), nil
	case algebra.FunSubstring3:
		return fmt.Sprintf("SUBSTRING(%s FROM CAST(ROUND(%s) AS INT) FOR CAST(ROUND(%s) AS INT))",
			a, b, o.Args[2]), nil
	case algebra.FunDocBefore:
		return a + " < " + b, nil // packed (frag,pre) keys preserve document order
	case algebra.FunNodeIs:
		return a + " = " + b, nil
	case algebra.FunAtomize:
		// Atomization of the packed node key: the string value lookup is a
		// correlated aggregation over the node's text descendants.
		return fmt.Sprintf(
			"(SELECT COALESCE(STRING_AGG(t.value, '' ORDER BY t.pre), '') FROM doc t "+
				"WHERE t.frag = %s / 4294967296 AND t.kind = 'text' "+
				"AND t.pre > %s %% 4294967296 "+
				"AND t.pre <= %s %% 4294967296 + (SELECT s.size FROM doc s "+
				"WHERE s.frag = %s / 4294967296 AND s.pre = %s %% 4294967296))",
			a, a, a, a, a), nil
	case algebra.FunEbvItem:
		return fmt.Sprintf("(%s IS NOT NULL AND CAST(%s AS VARCHAR) NOT IN ('', '0', 'false'))", a, a), nil
	case algebra.FunNameOf:
		return fmt.Sprintf(
			"(SELECT n.value FROM doc n WHERE n.frag = %s / 4294967296 AND n.pre = %s %% 4294967296)",
			a, a), nil
	}
	return "", fmt.Errorf("sqlgen: no SQL form for function %s", o.Fun)
}

func aggExpr(o *algebra.Op) (string, error) {
	arg := ""
	if len(o.Args) > 0 {
		arg = o.Args[0]
	}
	switch o.Agg {
	case algebra.AggCount:
		return "COUNT(*)", nil
	case algebra.AggSum:
		return fmt.Sprintf("COALESCE(SUM(%s), 0)", arg), nil
	case algebra.AggMin:
		return fmt.Sprintf("MIN(%s)", arg), nil
	case algebra.AggMax:
		return fmt.Sprintf("MAX(%s)", arg), nil
	case algebra.AggAvg:
		return fmt.Sprintf("AVG(%s)", arg), nil
	case algebra.AggStrJoin:
		return fmt.Sprintf("STRING_AGG(%s, %s)", arg, sqlString(o.Sep)), nil
	}
	return "", fmt.Errorf("sqlgen: no SQL form for aggregate %s", o.Agg)
}

// litValues renders a literal table as a VALUES list.
func litValues(t *bat.Table) (string, error) {
	if t.Rows() == 0 {
		// SQL has no empty VALUES; emit a never-true filter over one row.
		row := make([]string, len(t.Cols()))
		for i := range row {
			row[i] = "NULL"
		}
		return fmt.Sprintf("SELECT * FROM (VALUES (%s)) AS z WHERE FALSE",
			strings.Join(row, ", ")), nil
	}
	var rows []string
	for i := 0; i < t.Rows(); i++ {
		vals := make([]string, len(t.Cols()))
		for j, col := range t.Cols() {
			lit, err := sqlItem(t.MustCol(col).ItemAt(i))
			if err != nil {
				return "", err
			}
			vals[j] = lit
		}
		rows = append(rows, "("+strings.Join(vals, ", ")+")")
	}
	return "VALUES " + strings.Join(rows, ", "), nil
}

func sqlItem(it bat.Item) (string, error) {
	switch it.Kind {
	case bat.KInt:
		return fmt.Sprintf("%d", it.I), nil
	case bat.KFloat:
		return fmt.Sprintf("%g", it.F), nil
	case bat.KStr, bat.KUntyped:
		return sqlString(it.S), nil
	case bat.KBool:
		if it.B {
			return "TRUE", nil
		}
		return "FALSE", nil
	case bat.KNode:
		return fmt.Sprintf("%d", int64(it.N.Frag)*4294967296+int64(it.N.Pre)), nil
	}
	return "", fmt.Errorf("sqlgen: no SQL literal for %s", it.Kind)
}

func sqlString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
