package sqlgen

import (
	"strings"
	"testing"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
)

func funSQL(t *testing.T, kind algebra.FunKind, args ...string) string {
	t.Helper()
	o := &algebra.Op{Kind: algebra.OpFun, Fun: kind, Args: args}
	s, err := funExpr(o)
	if err != nil {
		t.Fatalf("funExpr(%s): %v", kind, err)
	}
	return s
}

func TestFunExprForms(t *testing.T) {
	cases := []struct {
		kind algebra.FunKind
		args []string
		want string
	}{
		{algebra.FunAdd, []string{"a", "b"}, "a + b"},
		{algebra.FunSub, []string{"a", "b"}, "a - b"},
		{algebra.FunMul, []string{"a", "b"}, "a * b"},
		{algebra.FunDiv, []string{"a", "b"}, "CAST(a AS DOUBLE PRECISION) / b"},
		{algebra.FunIDiv, []string{"a", "b"}, "CAST(a / b AS BIGINT)"},
		{algebra.FunMod, []string{"a", "b"}, "MOD(a, b)"},
		{algebra.FunNeg, []string{"a"}, "-a"},
		{algebra.FunEq, []string{"a", "b"}, "a = b"},
		{algebra.FunNe, []string{"a", "b"}, "a <> b"},
		{algebra.FunLt, []string{"a", "b"}, "a < b"},
		{algebra.FunLe, []string{"a", "b"}, "a <= b"},
		{algebra.FunGt, []string{"a", "b"}, "a > b"},
		{algebra.FunGe, []string{"a", "b"}, "a >= b"},
		{algebra.FunAnd, []string{"a", "b"}, "a AND b"},
		{algebra.FunOr, []string{"a", "b"}, "a OR b"},
		{algebra.FunNot, []string{"a"}, "NOT a"},
		{algebra.FunConcat, []string{"a", "b"}, "a || b"},
		{algebra.FunContains, []string{"a", "b"}, "POSITION(b IN a) > 0"},
		{algebra.FunStartsWith, []string{"a", "b"}, "POSITION(b IN a) = 1"},
		{algebra.FunStringLength, []string{"a"}, "CHAR_LENGTH(a)"},
		{algebra.FunString, []string{"a"}, "CAST(a AS VARCHAR)"},
		{algebra.FunNumber, []string{"a"}, "CAST(a AS DOUBLE PRECISION)"},
		{algebra.FunDocBefore, []string{"a", "b"}, "a < b"},
		{algebra.FunNodeIs, []string{"a", "b"}, "a = b"},
	}
	for _, c := range cases {
		if got := funSQL(t, c.kind, c.args...); got != c.want {
			t.Errorf("%s: %q, want %q", c.kind, got, c.want)
		}
	}
	// Forms with embedded subselects just need the right shape.
	if got := funSQL(t, algebra.FunAtomize, "a"); !strings.Contains(got, "STRING_AGG") {
		t.Errorf("atomize: %q", got)
	}
	if got := funSQL(t, algebra.FunNameOf, "a"); !strings.Contains(got, "SELECT n.value") {
		t.Errorf("nameof: %q", got)
	}
	if got := funSQL(t, algebra.FunEbvItem, "a"); !strings.Contains(got, "IS NOT NULL") {
		t.Errorf("ebv: %q", got)
	}
	if got := funSQL(t, algebra.FunSubstring, "a", "b"); !strings.Contains(got, "SUBSTRING(a FROM") {
		t.Errorf("substring: %q", got)
	}
	if got := funSQL(t, algebra.FunSubstring3, "a", "b", "c"); !strings.Contains(got, "FOR CAST") {
		t.Errorf("substring3: %q", got)
	}
}

func TestAggExprForms(t *testing.T) {
	cases := []struct {
		agg  algebra.AggKind
		want string
	}{
		{algebra.AggCount, "COUNT(*)"},
		{algebra.AggSum, "COALESCE(SUM(v), 0)"},
		{algebra.AggMin, "MIN(v)"},
		{algebra.AggMax, "MAX(v)"},
		{algebra.AggAvg, "AVG(v)"},
	}
	for _, c := range cases {
		o := &algebra.Op{Kind: algebra.OpAggr, Agg: c.agg, Args: []string{"v"}}
		got, err := aggExpr(o)
		if err != nil || got != c.want {
			t.Errorf("%s: %q (%v), want %q", c.agg, got, err, c.want)
		}
	}
	sj := &algebra.Op{Kind: algebra.OpAggr, Agg: algebra.AggStrJoin, Args: []string{"v"}, Sep: ", "}
	got, err := aggExpr(sj)
	if err != nil || got != "STRING_AGG(v, ', ')" {
		t.Errorf("strjoin: %q (%v)", got, err)
	}
}

func TestSQLItemLiterals(t *testing.T) {
	cases := []struct {
		it   bat.Item
		want string
	}{
		{bat.Int(-5), "-5"},
		{bat.Float(2.5), "2.5"},
		{bat.Str("x"), "'x'"},
		{bat.Untyped("u"), "'u'"},
		{bat.Bool(true), "TRUE"},
		{bat.Bool(false), "FALSE"},
		{bat.Node(bat.NodeRef{Frag: 1, Pre: 2}), "4294967298"},
	}
	for _, c := range cases {
		got, err := sqlItem(c.it)
		if err != nil || got != c.want {
			t.Errorf("sqlItem(%v) = %q (%v), want %q", c.it, got, err, c.want)
		}
	}
}

func TestEmptyLiteralTable(t *testing.T) {
	empty := algebra.Lit(bat.MustTable("iter", bat.IntVec{}, "pos", bat.IntVec{}, "item", bat.ItemVec{}))
	sql, err := Emit(empty)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "WHERE FALSE") {
		t.Errorf("empty VALUES encoding:\n%s", sql)
	}
}

func TestStepAxesSQL(t *testing.T) {
	ctx := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1}, "item", bat.NodeVec{{Frag: 0, Pre: 0}}))
	for _, axis := range []algebra.Axis{
		algebra.Child, algebra.Descendant, algebra.DescendantOrSelf,
		algebra.Parent, algebra.Ancestor, algebra.AncestorOrSelf,
		algebra.Following, algebra.Preceding, algebra.Self,
		algebra.FollowingSibling, algebra.PrecedingSibling,
	} {
		st, err := algebra.Step(ctx, axis, algebra.KindTest{Kind: algebra.TestNode})
		if err != nil {
			t.Fatal(err)
		}
		sql, err := Emit(st)
		if err != nil {
			t.Errorf("axis %s: %v", axis, err)
			continue
		}
		if !strings.Contains(sql, "JOIN doc") {
			t.Errorf("axis %s: no region join in\n%s", axis, sql)
		}
	}
}
