package sqlgen

import (
	"strings"
	"testing"

	"pathfinder/internal/core"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

func emitQuery(t *testing.T, src string) string {
	t.Helper()
	plan, _, err := core.CompileQuery(src, xqcore.Options{ContextDoc: "xmark.xml"})
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	sql, err := Emit(plan)
	if err != nil {
		t.Fatalf("emit %q: %v", src, err)
	}
	return sql
}

func TestEmitFigure5Query(t *testing.T) {
	sql := emitQuery(t, `for $v in (10,20) return $v + 100`)
	for _, want := range []string{
		"WITH", "VALUES", "DENSE_RANK() OVER", "JOIN", "ORDER BY iter, pos",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestEmitStepUsesRegionPredicate(t *testing.T) {
	sql := emitQuery(t, `count(/site/people/person)`)
	// The XPath Accelerator region predicate of [4]: descendant/child
	// regions over pre/size/level.
	for _, want := range []string{
		"d.pre > ", "c2.size", "d.level = c2.level + 1",
		"d.kind = 'elem'", "d.value = 'person'", "COUNT(*)",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestEmitAttributeAxis(t *testing.T) {
	sql := emitQuery(t, `count(//person/@id)`)
	if !strings.Contains(sql, "JOIN att a ON") || !strings.Contains(sql, "a.name = 'id'") {
		t.Errorf("attribute axis SQL:\n%s", sql)
	}
}

func TestEmitJoinQuery(t *testing.T) {
	sql := emitQuery(t, `
		for $p in /site/people/person
		return count(for $t in /site/closed_auctions/closed_auction
		       where $t/buyer/@person = $p/@id return $t)`)
	for _, want := range []string{
		"JOIN", "GROUP BY", "NOT EXISTS", // join, aggregate, default fill
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestEmitRange(t *testing.T) {
	sql := emitQuery(t, `for $i in 1 to 5 return $i`)
	if !strings.Contains(sql, "generate_series") {
		t.Errorf("range SQL:\n%s", sql)
	}
}

func TestConstructorsRejected(t *testing.T) {
	plan, _, err := core.CompileQuery(`<a>{1}</a>`, xqcore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Emit(plan); err == nil {
		t.Error("node constructors must be rejected on SQL hosts")
	}
}

func TestEmitDeterministicAndShared(t *testing.T) {
	a := emitQuery(t, xmark.Query(5))
	b := emitQuery(t, xmark.Query(5))
	if a != b {
		t.Error("emission must be deterministic")
	}
	// DAG sharing carries over: each CTE appears once.
	if strings.Count(a, "q0(") != 1 {
		t.Errorf("CTE q0 emitted %d times", strings.Count(a, "q0("))
	}
}

func TestEmitAllNonConstructorXMarkQueries(t *testing.T) {
	// Queries without node construction must all emit.
	for _, n := range []int{1, 5, 6, 7, 14} {
		plan, _, err := core.CompileQuery(xmark.Query(n), xqcore.Options{ContextDoc: "xmark.xml"})
		if err != nil {
			t.Fatalf("Q%d: %v", n, err)
		}
		sql, err := Emit(plan)
		if err != nil {
			t.Errorf("Q%d: %v", n, err)
			continue
		}
		if !strings.HasPrefix(sql, "WITH") || !strings.HasSuffix(strings.TrimSpace(sql), ";") {
			t.Errorf("Q%d: malformed SQL scaffold", n)
		}
	}
}

func TestSQLStringEscaping(t *testing.T) {
	if got := sqlString("o'brien"); got != "'o''brien'" {
		t.Errorf("escaping: %q", got)
	}
	sql := emitQuery(t, `contains("it's", "x")`)
	if !strings.Contains(sql, "'it''s'") {
		t.Errorf("literal escaping:\n%s", sql)
	}
}
