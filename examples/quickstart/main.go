// Quickstart: load an XML document, run XQuery through the full Pathfinder
// pipeline (parse → normalize → loop-lift → relational plan → column
// engine), and print results.
package main

import (
	"fmt"
	"log"

	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xqcore"
)

const doc = `<library>
  <book year="1994"><title>TCP/IP Illustrated</title><price>65.95</price></book>
  <book year="1992"><title>Advanced Unix Programming</title><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title><price>39.95</price></book>
  <book year="1999"><title>The Economics of Technology</title><price>129.95</price></book>
</library>`

func main() {
	// An Engine owns a document store; every fn:doc call and constructor
	// works against it.
	eng := engine.New(xenc.NewStore())
	if _, err := eng.Store.LoadDocumentString("books.xml", doc); err != nil {
		log.Fatal(err)
	}

	// Options.ContextDoc binds absolute paths (/library/...) to the
	// loaded document, so plain XPath works without fn:doc.
	opts := xqcore.Options{ContextDoc: "books.xml"}

	queries := []string{
		`count(//book)`,
		`for $b in /library/book where $b/price < 70 return $b/title/text()`,
		`sum(//price)`,
		`for $b in /library/book
		 order by $b/price descending
		 return <entry year="{$b/@year}">{$b/title/text()}</entry>`,
		`for $b in /library/book
		 where $b/@year >= 1999
		 return string($b/title)`,
	}
	for _, q := range queries {
		out, err := core.Run(q, eng, opts)
		if err != nil {
			log.Fatalf("query %q: %v", q, err)
		}
		fmt.Printf("query:  %s\nresult: %s\n\n", q, out)
	}
}
