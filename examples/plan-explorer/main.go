// Plan explorer: the "look under the hood" demonstration hooks of §4,
// applied to the paper's Figure 5 query
//
//	for $v in (10,20) return $v + 100
//
// Prints every compilation stage: the type-annotated XQuery Core
// equivalent, the loop-lifted relational plan (Figure 5's DAG), the
// peephole-optimized plan, its Graphviz rendering, and the MIL program
// shipped to the back end.
package main

import (
	"fmt"
	"log"

	"pathfinder/internal/algebra"
	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/mil"
	"pathfinder/internal/opt"
	"pathfinder/internal/serialize"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xqcore"
)

const query = `for $v in (10,20) return $v + 100`

func main() {
	fmt.Printf("query: %s\n\n", query)

	plan, coreExpr, err := core.CompileQuery(query, xqcore.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== type-annotated XQuery Core ==")
	fmt.Println(xqcore.Print(coreExpr))

	fmt.Printf("== loop-lifted relational plan (%d operators, cf. Figure 5) ==\n",
		algebra.CountOps(plan))
	fmt.Println(algebra.TreeString(plan))

	oplan, err := opt.Optimize(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== after peephole optimization (%d operators) ==\n",
		algebra.CountOps(oplan))
	fmt.Println(algebra.TreeString(oplan))

	fmt.Println("== Graphviz (pipe into `dot -Tsvg`) ==")
	fmt.Println(algebra.Dot(oplan))

	prog, err := mil.Emit(oplan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== MIL program shipped to the back end ==")
	fmt.Println(prog)

	eng := engine.New(xenc.NewStore())
	res, err := eng.Eval(oplan)
	if err != nil {
		log.Fatal(err)
	}
	out, err := serialize.Result(eng.Store, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== result ==\n%s\n", out)
}
