// Auction analytics: the workload the paper's introduction motivates —
// analytical XQuery over a generated XMark auction site, evaluated on the
// relational engine. Generates an instance in memory, loads it, and runs a
// set of analytical queries (aggregation, joins, sorting, reconstruction).
package main

import (
	"fmt"
	"log"
	"time"

	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xmark"
	"pathfinder/internal/xqcore"
)

func main() {
	const sf = 0.005
	doc := xmark.GenerateString(sf)
	fmt.Printf("generated XMark instance: sf=%g, %d bytes\n", sf, len(doc))

	eng := engine.New(xenc.NewStore())
	start := time.Now()
	if _, err := eng.Store.LoadDocumentString("xmark.xml", doc); err != nil {
		log.Fatal(err)
	}
	rep := eng.Store.Report()
	fmt.Printf("loaded in %v: %d nodes, %d attributes, %d bytes encoded (%.0f%% of XML)\n\n",
		time.Since(start).Round(time.Millisecond), rep.Nodes, rep.Attrs,
		rep.Total(), 100*float64(rep.Total())/float64(len(doc)))

	opts := xqcore.Options{ContextDoc: "xmark.xml"}
	analytics := []struct {
		label string
		query string
	}{
		{"auction volume", `count(//open_auction) + count(//closed_auction)`},
		{"total closed sales value", `sum(/site/closed_auctions/closed_auction/price)`},
		{"most expensive sale", `max(//closed_auction/price)`},
		{"hottest auction (most bidders)",
			`for $a in /site/open_auctions/open_auction
			 let $n := count($a/bidder)
			 order by $n descending
			 return <auction id="{$a/@id}" bidders="{$n}"/>`},
		{"per-region item counts", `for $r in /site/regions/* return <region>{count($r/item)}</region>`},
		{"buyers with more than one purchase",
			`for $p in /site/people/person
			 let $bought := for $t in /site/closed_auctions/closed_auction
			                where $t/buyer/@person = $p/@id
			                return $t
			 where count($bought) >= 2
			 return $p/name/text()`},
		{"high-income watchers of featured items",
			`count(for $p in /site/people/person
			       where $p/profile/@income >= 80000
			       return $p/watches/watch)`},
		{"items described as gold",
			`count(for $i in /site//item
			       where contains(string($i/description), "gold")
			       return $i)`},
	}
	for _, a := range analytics {
		start := time.Now()
		out, err := core.Run(a.query, eng, opts)
		if err != nil {
			log.Fatalf("%s: %v", a.label, err)
		}
		if len(out) > 160 {
			out = out[:160] + "..."
		}
		fmt.Printf("%-38s (%6s): %s\n", a.label,
			time.Since(start).Round(time.Microsecond*100), out)
	}
}
