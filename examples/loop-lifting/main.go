// Loop-lifting walkthrough: reproduces Figure 3 of the paper — the
// intermediate relational encodings in the evaluation of
//
//	for $v in (10,20), $w in (100,200) return $v + $w
//
// Each stage is built with the Table 1 algebra and evaluated on the column
// engine, printing the iter|pos|item (and map) tables exactly as the
// figure shows them.
package main

import (
	"fmt"
	"log"

	"pathfinder/internal/algebra"
	"pathfinder/internal/bat"
	"pathfinder/internal/core"
	"pathfinder/internal/engine"
	"pathfinder/internal/xenc"
	"pathfinder/internal/xqcore"
)

func must(o *algebra.Op, err error) *algebra.Op {
	if err != nil {
		log.Fatal(err)
	}
	return o
}

func show(eng *engine.Engine, label string, plan *algebra.Op) *bat.Table {
	t, err := eng.Eval(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n%s\n", label, t)
	return t
}

func main() {
	eng := engine.New(xenc.NewStore())

	// (a) the literal (10,20) in the top-level scope s0: constant iter 1.
	q10 := algebra.Lit(bat.MustTable(
		"iter", bat.IntVec{1, 1},
		"pos", bat.IntVec{1, 2},
		"item", bat.ItemVec{bat.Int(10), bat.Int(20)},
	))
	show(eng, "(a) (10,20) in s0:", q10)

	// (b) $v in scope s1: ϱ assigns one fresh iter per binding.
	rn1 := must(algebra.RowNum(q10, "inner", []algebra.OrderSpec{{Col: "iter"}, {Col: "pos"}}, ""))
	vS1 := must(algebra.Project(rn1, "iter:inner", "item"))
	vS1p := must(algebra.Cross(vS1, algebra.Lit(bat.MustTable("pos", bat.IntVec{1}))))
	show(eng, "(b) $v in scope s1:", must(algebra.Project(vS1p, "iter", "pos", "item")))

	// Lift (100,200) into s1 and open scope s2 for $w.
	q100 := algebra.Lit(bat.MustTable(
		"pos", bat.IntVec{1, 2},
		"item", bat.ItemVec{bat.Int(100), bat.Int(200)},
	))
	loop1 := must(algebra.Project(rn1, "oiter:inner"))
	lifted := must(algebra.Cross(loop1, q100))
	rn2 := must(algebra.RowNum(lifted, "inner2", []algebra.OrderSpec{{Col: "oiter"}, {Col: "pos"}}, ""))

	// (c) $v lifted into scope s2 via the map relation.
	mapRel := must(algebra.Project(rn2, "inner:inner2", "outer:oiter"))
	vLift := must(algebra.Join(
		must(algebra.Project(rn1, "viter:inner", "item")),
		mapRel, []string{"viter"}, []string{"outer"}))
	vS2 := must(algebra.Cross(
		must(algebra.Project(vLift, "iter:inner", "item")),
		algebra.Lit(bat.MustTable("pos", bat.IntVec{1}))))
	show(eng, "(c) $v in scope s2:", must(algebra.Project(vS2, "iter", "pos", "item")))

	// (d) $w in scope s2.
	wS2 := must(algebra.Cross(
		must(algebra.Project(rn2, "iter:inner2", "item")),
		algebra.Lit(bat.MustTable("pos", bat.IntVec{1}))))
	show(eng, "(d) $w in scope s2:", must(algebra.Project(wS2, "iter", "pos", "item")))

	// (e) $v + $w in s2: join the singleton encodings on iter, apply ⊛.
	sum := must(algebra.Fun(
		must(algebra.Join(
			must(algebra.Project(vS2, "iter", "pos", "vitem:item")),
			must(algebra.Project(wS2, "iter2:iter", "witem:item")),
			[]string{"iter"}, []string{"iter2"})),
		"res", algebra.FunAdd, "vitem", "witem"))
	sumEnc := must(algebra.Project(sum, "iter", "pos", "item:res"))
	show(eng, "(e) $v + $w in s2:", sumEnc)

	// (f) the map relation between s1 and s2.
	show(eng, "(f) map(s1,s2):", must(algebra.Project(rn2, "inner:inner2", "outer:oiter")))

	// (g) back-mapping to the top-level scope s0 forms the overall result.
	backToS1 := must(algebra.Join(sumEnc, mapRel, []string{"iter"}, []string{"inner"}))
	rnB := must(algebra.RowNum(backToS1, "pos1",
		[]algebra.OrderSpec{{Col: "iter"}, {Col: "pos"}}, "outer"))
	s1Res := must(algebra.Project(rnB, "i1:outer", "p1:pos1", "it1:item"))
	// ... and once more through map(s0,s1).
	map01 := must(algebra.Project(rn1, "inner", "outer:iter"))
	backToS0 := must(algebra.Join(s1Res, map01, []string{"i1"}, []string{"inner"}))
	rnC := must(algebra.RowNum(backToS0, "pos2",
		[]algebra.OrderSpec{{Col: "i1"}, {Col: "p1"}}, "outer"))
	final := must(algebra.Project(rnC, "iter:outer", "pos:pos2", "item:it1"))
	show(eng, "(g) result in scope s0:", final)

	// The compiler produces the same evaluation automatically:
	out, err := core.Run(`for $v in (10,20), $w in (100,200) return $v + $w`,
		engine.New(xenc.NewStore()), xqcore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled query result: %s\n", out)
}
